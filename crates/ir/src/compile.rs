//! Ahead-of-time compilation of monitors to slot-indexed bytecode.
//!
//! The reference interpreter ([`crate::exec`]) resolves names on every
//! event: variable references are looked up by string, trigger patterns
//! compare task *names*, and expression trees are walked with one heap
//! allocation per variable snapshot. All of that is static — a monitor
//! suite never changes after installation — so this module moves it to
//! install time (the paper's model-to-text step, specialised for the
//! simulator instead of C):
//!
//! - variable names are interned to dense **slot indices**;
//! - `TaskPat::Named` patterns are resolved to dense task ids against
//!   the application graph, and transitions are flattened into
//!   per-event-kind, per-task **dispatch tables** (`task id →
//!   [transition index]`), so delivering an event costs one table
//!   lookup instead of a scan with string compares;
//! - guard and body expression trees are lowered to a flat
//!   register-style **bytecode** ([`Op`]) evaluated over a caller-owned
//!   scratch register file — zero heap allocation per event.
//!
//! [`CompiledMachine::step`] mirrors [`crate::exec::step`] exactly —
//! first-match transition selection, implicit self-transition,
//! short-circuit `&&`/`||`, saturating arithmetic, assignment coercion,
//! and the same error surfacing order — which the differential property
//! tests in `artemis-monitor` pin down.

use core::ops::Range;

use artemis_core::app::AppGraph;
use artemis_core::event::EventKind;
use intermittent_sim::OpCycles;

use crate::exec::coerce;
use crate::expr::{apply, BinOp, EvalError, EventCtx, Expr, Value};
use crate::fsm::{EmitFail, MonitorSuite, StateMachine, Stmt, TaskPat, Transition, Trigger};
use crate::layout::MachineLayout;

/// One bytecode instruction. Operands name registers in the scratch
/// file (`r`), slots in the machine's variable block (`slot`), entries
/// in the literal pool (`lit`), or absolute instruction targets.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Op {
    /// `r[dst] = lits[lit]`
    Const { dst: u16, lit: u16 },
    /// `r[dst] = vars[slot]`
    LoadVar { dst: u16, slot: u16 },
    /// `r[dst] = Time(ctx.time_us)`
    LoadEventTime { dst: u16 },
    /// `r[dst] = Float(ctx.dep_data)`; errors with `NoDepData`.
    LoadDepData { dst: u16 },
    /// `r[dst] = Int(ctx.energy_nj)` (saturating).
    LoadEnergy { dst: u16 },
    /// `r[dst] = r[a] op r[b]` (non-short-circuit operators).
    Bin { op: BinOp, dst: u16, a: u16, b: u16 },
    /// `r[dst] = !r[src]`; errors unless `r[src]` is a bool.
    Not { dst: u16, src: u16 },
    /// Errors unless `r[src]` is a bool (tail check of `&&`/`||`).
    AssertBool { src: u16 },
    /// `pc = target` if `r[src]` is `false`; errors on non-bool.
    JumpIfFalse { src: u16, target: u32 },
    /// `pc = target` if `r[src]` is `true`; errors on non-bool.
    JumpIfTrue { src: u16, target: u32 },
    /// `pc = target`.
    Jump { target: u32 },
    /// `vars[slot] = coerce(r[src], vars[slot])`.
    StoreVar { slot: u16, src: u16 },
    /// Fused compare + conditional branch (optimizer-emitted):
    /// `r[dst] = r[a] op r[b]`, then `pc = target` when the result,
    /// read as a bool, equals `when`. Errors on a non-bool result, so
    /// past this instruction `r[dst]` is provably `Bool` on every
    /// surviving path. The optimizer only emits comparison operators
    /// here; the polarity flag (instead of operator negation) keeps
    /// float comparisons NaN-exact.
    CmpBranch {
        /// Comparison operator.
        op: BinOp,
        /// Result register (register 0 for guard tails).
        dst: u16,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
        /// Branch target when the result equals `when`.
        target: u32,
        /// Branch polarity.
        when: bool,
    },
    /// Fused slot load + literal compare + conditional branch — the
    /// dominant guard shape `var cmp lit` (optimizer-emitted):
    /// `r[dst] = vars[slot] op lits[lit]`, then `pc = target` when the
    /// result equals `when`. Same error/typing contract as
    /// [`Op::CmpBranch`]. Unconditional guard tails use a fall-through
    /// `target` (the next instruction), making both paths identical.
    LoadCmpBranch {
        /// Comparison operator (slot value on the left).
        op: BinOp,
        /// Result register (register 0 for guard tails).
        dst: u16,
        /// Slot providing the left operand.
        slot: u16,
        /// Literal providing the right operand.
        lit: u16,
        /// Branch target when the result equals `when`.
        target: u32,
        /// Branch polarity.
        when: bool,
    },
    /// Fused literal store (optimizer-emitted):
    /// `vars[slot] = coerce(lits[lit], vars[slot])` — same coercion
    /// (and `TypeMismatch` surface) as `Const` + `StoreVar`.
    ConstStore {
        /// Destination slot.
        slot: u16,
        /// Literal pool entry stored.
        lit: u16,
    },
}

/// Why a machine could not be compiled. Machines that pass
/// [`crate::validate::validate_strict`] and observe only tasks present
/// in the application graph always compile.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileIssue {
    /// An expression or assignment references an undeclared variable.
    UnknownVar {
        /// The unresolvable name.
        name: String,
    },
    /// A trigger names a task missing from the application graph.
    UnknownTask {
        /// The unresolvable task name.
        task: String,
    },
    /// The machine exceeds a bytecode index limit (u16 slots/registers,
    /// u32 instructions) — unreachable for generated monitors.
    TooLarge,
}

impl core::fmt::Display for CompileIssue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileIssue::UnknownVar { name } => write!(f, "unknown variable `{name}`"),
            CompileIssue::UnknownTask { task } => write!(f, "unknown task `{task}`"),
            CompileIssue::TooLarge => write!(f, "machine exceeds bytecode limits"),
        }
    }
}

impl std::error::Error for CompileIssue {}

/// A transition after compilation: resolved state indices, bytecode
/// ranges for guard and body, and the original failure signal.
///
/// Public so the static analyser ([`crate::analysis`]) and its mutation
/// fuzzers can inspect and perturb compiled programs; the engine itself
/// only ever executes transitions through [`CompiledMachine::step`].
#[derive(Clone, PartialEq, Debug)]
pub struct CompiledTransition {
    /// Source state index.
    pub from: u32,
    /// Destination state index.
    pub to: u32,
    /// Guard instructions; result lands in register 0. `None` means
    /// unconditionally enabled.
    pub guard: Option<Range<u32>>,
    /// Body instructions.
    pub body: Range<u32>,
    /// Failure signal raised when the transition is taken.
    pub emit: Option<EmitFail>,
}

/// One event as the compiled evaluator sees it: kind + dense task id +
/// evaluation context. The name-free counterpart of
/// [`crate::exec::IrEvent`].
#[derive(Clone, Copy, Debug)]
pub struct CompiledEvent {
    /// Start or end.
    pub kind: EventKind,
    /// Dense task id (index into the application graph).
    pub task: u32,
    /// Evaluation context (timestamp, depData, energy).
    pub ctx: EventCtx,
}

pub(crate) fn kind_index(kind: EventKind) -> usize {
    match kind {
        EventKind::StartTask => 0,
        EventKind::EndTask => 1,
    }
}

/// Fraction of a machine's variable block a dispatch key may touch
/// before its commits degrade to whole-block: `touched / var_count >=`
/// [`DEGRADE_NUM`]`/`[`DEGRADE_DEN`] (the "~¾ of the block" heuristic —
/// at that density a sparse record's per-sub-write headers outweigh the
/// bytes it skips).
pub const DEGRADE_NUM: usize = 3;
/// See [`DEGRADE_NUM`].
pub const DEGRADE_DEN: usize = 4;

/// The statically-derived FRAM access footprint of one `(event kind,
/// task)` dispatch key: every variable slot any routed transition's
/// guard or body may read or write. A sound over-approximation — the
/// union over all transitions in the key's dispatch list, whether or
/// not they fire at run time.
///
/// The engine uses this to load only the covering slot span and to
/// journal a sparse `(slot, value)` delta instead of the whole block;
/// [`AccessSet::whole_block`] is the compile-time auto-degrade decision
/// for keys that touch most of the block anyway.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AccessSet {
    /// Slots a guard or body may read, sorted ascending.
    pub reads: Vec<u16>,
    /// Slots a body may write, sorted ascending.
    pub writes: Vec<u16>,
    /// `true` when this key should use whole-block load/commit: it
    /// touches at least ¾ of the block (or the block is state-only).
    pub whole_block: bool,
}

impl AccessSet {
    /// Highest slot index the key can read **or** write — the engine
    /// loads the block prefix covering `0..=max` (the write-back of
    /// untouched write slots requires the read span to cover the write
    /// span, which holds by construction).
    pub fn max_touched_slot(&self) -> Option<u16> {
        self.reads.iter().chain(&self.writes).copied().max()
    }

    /// Number of distinct slots touched (reads ∪ writes).
    pub fn touched_count(&self) -> usize {
        let mut n = self.reads.len();
        for w in &self.writes {
            if !self.reads.contains(w) {
                n += 1;
            }
        }
        n
    }

    /// Folds `other` into `self`: reads and writes become the sorted,
    /// deduplicated union and `whole_block` is sticky. Used by the
    /// batch delivery path to merge the footprints of every event a
    /// machine sees in one burst before committing a single coalesced
    /// record.
    pub fn union_with(&mut self, other: &AccessSet) {
        fn merge(dst: &mut Vec<u16>, src: &[u16]) {
            dst.extend_from_slice(src);
            dst.sort_unstable();
            dst.dedup();
        }
        merge(&mut self.reads, &other.reads);
        merge(&mut self.writes, &other.writes);
        self.whole_block |= other.whole_block;
    }
}

/// Computes the access set of one dispatch list by scanning the guard
/// and body ranges of every routed transition. Tolerates raw machines
/// with out-of-range indices (clamped / skipped): access sets are
/// derived data, and unverified machines are rejected by the analyser
/// before any of this matters.
fn access_for_list(
    code: &[Op],
    transitions: &[CompiledTransition],
    list: &[u16],
    var_count: usize,
) -> AccessSet {
    let mut read = vec![false; var_count];
    let mut written = vec![false; var_count];
    let scan = |range: &Range<u32>, read: &mut Vec<bool>, written: &mut Vec<bool>| {
        let ops = code
            .get(range.start as usize..range.end as usize)
            .unwrap_or(&[]);
        for op in ops {
            match op {
                Op::LoadVar { slot, .. } => {
                    if let Some(r) = read.get_mut(*slot as usize) {
                        *r = true;
                    }
                }
                Op::StoreVar { slot, .. } => {
                    if let Some(w) = written.get_mut(*slot as usize) {
                        *w = true;
                    }
                }
                Op::LoadCmpBranch { slot, .. } => {
                    if let Some(r) = read.get_mut(*slot as usize) {
                        *r = true;
                    }
                }
                Op::ConstStore { slot, .. } => {
                    if let Some(w) = written.get_mut(*slot as usize) {
                        *w = true;
                    }
                }
                _ => {}
            }
        }
    };
    for &ti in list {
        let Some(t) = transitions.get(ti as usize) else {
            continue;
        };
        if let Some(g) = &t.guard {
            scan(g, &mut read, &mut written);
        }
        scan(&t.body, &mut read, &mut written);
    }
    let collect = |bits: &[bool]| {
        bits.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i as u16)
            .collect::<Vec<u16>>()
    };
    let reads = collect(&read);
    let writes = collect(&written);
    let touched = (0..var_count).filter(|&i| read[i] || written[i]).count();
    let whole_block = var_count == 0 || touched * DEGRADE_DEN >= var_count * DEGRADE_NUM;
    AccessSet {
        reads,
        writes,
        whole_block,
    }
}

/// Derives per-key access sets for a machine's dispatch tables. Called
/// from both the compiler and [`CompiledMachine::from_raw`], so mutated
/// raw machines always carry access sets consistent with their code.
fn build_access_sets(
    code: &[Op],
    transitions: &[CompiledTransition],
    dispatch: &[Vec<Vec<u16>>; 2],
    wildcard: &[Vec<u16>; 2],
    var_count: usize,
) -> ([Vec<AccessSet>; 2], [AccessSet; 2]) {
    let per_kind = |k: usize| {
        dispatch[k]
            .iter()
            .map(|list| access_for_list(code, transitions, list, var_count))
            .collect::<Vec<_>>()
    };
    let wc = |k: usize| access_for_list(code, transitions, &wildcard[k], var_count);
    ([per_kind(0), per_kind(1)], [wc(0), wc(1)])
}

/// The statically-derived worst-case compute cost of delivering one
/// event to one `(event kind, task)` dispatch key: a CPU-cycle ceiling
/// (priced through [`OpCycles`], including the per-transition dispatch
/// scan) and an executed-bytecode-instruction ceiling (fused
/// superinstructions count as one). Sound for verified machines — the
/// maximum over every reachable stop point of the first-match scan in
/// [`CompiledMachine::step`], with each guard/body range priced by its
/// longest path through the forward-jump DAG.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StepCost {
    /// Worst-case CPU cycles one `step` of this key can execute.
    pub cycles: u64,
    /// Worst-case bytecode instructions one `step` can execute.
    pub instructions: u64,
}

/// Cycle price of one instruction under `c`.
fn op_price(op: &Op, c: &OpCycles) -> u64 {
    match op {
        Op::Const { .. } | Op::LoadEventTime { .. } | Op::LoadEnergy { .. } => c.load_imm,
        Op::LoadVar { .. } | Op::LoadDepData { .. } => c.load_slot,
        Op::Bin { .. } | Op::Not { .. } | Op::AssertBool { .. } => c.alu,
        Op::Jump { .. } | Op::JumpIfFalse { .. } | Op::JumpIfTrue { .. } => c.branch,
        Op::StoreVar { .. } => c.store_slot,
        Op::CmpBranch { .. } => c.cmp_branch,
        Op::LoadCmpBranch { .. } => c.load_cmp_branch,
        Op::ConstStore { .. } => c.const_store,
    }
}

/// Worst-path cost of one instruction range: a longest-path DP over
/// the forward-jump DAG (exact for straight-line code, the maximising
/// branch side otherwise). Backward or out-of-range targets — which
/// the verifier rejects, so they never reach the engine — degrade to
/// the sum of every instruction in the range.
fn range_cost(code: &[Op], range: &Range<u32>, prices: &OpCycles) -> StepCost {
    let start = range.start as usize;
    let end = (range.end as usize).min(code.len());
    if start >= end {
        return StepCost::default();
    }
    let n = end - start;
    let mut cyc = vec![0u64; n + 1];
    let mut ins = vec![0u64; n + 1];
    for i in (0..n).rev() {
        let op = &code[start + i];
        // Local successor of a branch target; `None` marks a target the
        // verifier would reject (backward or outside the range).
        let local = |t: u32| {
            let t = t as usize;
            (t > start + i && t <= end).then(|| t - start)
        };
        let succs: (usize, Option<usize>) = match op {
            Op::Jump { target } => match local(*target) {
                Some(t) => (t, None),
                None => {
                    return sum_cost(&code[start..end], prices);
                }
            },
            Op::JumpIfFalse { target, .. }
            | Op::JumpIfTrue { target, .. }
            | Op::CmpBranch { target, .. }
            | Op::LoadCmpBranch { target, .. } => match local(*target) {
                Some(t) => (i + 1, Some(t)),
                None => {
                    return sum_cost(&code[start..end], prices);
                }
            },
            _ => (i + 1, None),
        };
        let (s0, s1) = succs;
        let max2 = |v: &[u64]| v[s0].max(s1.map_or(0, |s| v[s]));
        cyc[i] = op_price(op, prices).saturating_add(max2(&cyc));
        ins[i] = 1 + max2(&ins);
    }
    StepCost {
        cycles: cyc[0],
        instructions: ins[0],
    }
}

/// Conservative fallback for ranges the DP cannot order: every
/// instruction priced once.
fn sum_cost(ops: &[Op], prices: &OpCycles) -> StepCost {
    StepCost {
        cycles: ops.iter().map(|op| op_price(op, prices)).sum(),
        instructions: ops.len() as u64,
    }
}

/// Worst-case cost of one `step` over `list`: the dispatch scan price
/// for every listed transition, plus — maximised over every state the
/// listed transitions fire from — the worst stop point of the
/// first-match scan (guards of every earlier same-state transition,
/// then either a taken transition's body or no match at all).
fn list_step_cost(
    code: &[Op],
    transitions: &[CompiledTransition],
    list: &[u16],
    prices: &OpCycles,
) -> StepCost {
    let cost_of =
        |r: Option<&Range<u32>>| r.map_or(StepCost::default(), |r| range_cost(code, r, prices));
    let mut states: Vec<u32> = list
        .iter()
        .filter_map(|&ti| transitions.get(ti as usize).map(|t| t.from))
        .collect();
    states.sort_unstable();
    states.dedup();
    let mut best = StepCost::default();
    for s in states {
        let mut run = StepCost::default();
        let mut worst = StepCost::default();
        for &ti in list {
            let Some(t) = transitions.get(ti as usize) else {
                continue;
            };
            if t.from != s {
                continue;
            }
            let guard = cost_of(t.guard.as_ref());
            run.cycles = run.cycles.saturating_add(guard.cycles);
            run.instructions = run.instructions.saturating_add(guard.instructions);
            let body = cost_of(Some(&t.body));
            worst.cycles = worst.cycles.max(run.cycles.saturating_add(body.cycles));
            worst.instructions = worst
                .instructions
                .max(run.instructions.saturating_add(body.instructions));
        }
        // No transition matched: every same-state guard still ran.
        worst.cycles = worst.cycles.max(run.cycles);
        worst.instructions = worst.instructions.max(run.instructions);
        best.cycles = best.cycles.max(worst.cycles);
        best.instructions = best.instructions.max(worst.instructions);
    }
    StepCost {
        cycles: best
            .cycles
            .saturating_add(prices.transition_scan.saturating_mul(list.len() as u64)),
        instructions: best.instructions,
    }
}

/// Derives per-key step-cost ceilings for a machine's dispatch tables,
/// mirroring [`build_access_sets`]: recomputed from the code in both
/// the compiler and [`CompiledMachine::from_raw`], so optimized or
/// mutated programs always carry costs consistent with what they
/// execute.
fn build_step_costs(
    code: &[Op],
    transitions: &[CompiledTransition],
    dispatch: &[Vec<Vec<u16>>; 2],
    wildcard: &[Vec<u16>; 2],
) -> ([Vec<StepCost>; 2], [StepCost; 2]) {
    let prices = OpCycles::default();
    let per_kind = |k: usize| {
        dispatch[k]
            .iter()
            .map(|list| list_step_cost(code, transitions, list, &prices))
            .collect::<Vec<_>>()
    };
    let wc = |k: usize| list_step_cost(code, transitions, &wildcard[k], &prices);
    ([per_kind(0), per_kind(1)], [wc(0), wc(1)])
}

/// One monitor compiled to bytecode plus dispatch tables.
#[derive(Clone, Debug)]
pub struct CompiledMachine {
    /// Flat instruction stream shared by all guards and bodies.
    pub(crate) code: Vec<Op>,
    /// Literal pool.
    pub(crate) lits: Vec<Value>,
    pub(crate) transitions: Vec<CompiledTransition>,
    /// `dispatch[kind][task id]` → indices of transitions whose trigger
    /// can match that event, in priority order.
    pub(crate) dispatch: [Vec<Vec<u16>>; 2],
    /// Fallback lists for task ids beyond the graph (wildcard-matching
    /// transitions only); events from installed applications never need
    /// them.
    pub(crate) wildcard: [Vec<u16>; 2],
    /// Scratch registers [`CompiledMachine::step`] needs.
    pub(crate) max_regs: usize,
    pub(crate) initial_state: u32,
    pub(crate) var_count: usize,
    /// Initial variable values, in slot order. Pins each slot's
    /// runtime type (assignment coercion never changes a slot's
    /// variant) — the packed layout's type source of truth.
    pub(crate) var_inits: Vec<Value>,
    /// `access[kind][task id]` → the key's static FRAM access set,
    /// mirroring `dispatch`. Derived from `code` (never serialised in
    /// [`RawMachine`]), so mutation can't make it lie.
    pub(crate) access: [Vec<AccessSet>; 2],
    /// Access sets of the wildcard lists, mirroring `wildcard`.
    pub(crate) wildcard_access: [AccessSet; 2],
    /// Packed FRAM block layout. Derived from `code` + `var_inits`
    /// (never serialised in [`RawMachine`]) like the access sets.
    pub(crate) layout: MachineLayout,
    /// `step_cost[kind][task id]` → the key's static compute ceiling,
    /// mirroring `dispatch`. Derived from `code` (never serialised in
    /// [`RawMachine`]) like the access sets.
    pub(crate) step_cost: [Vec<StepCost>; 2],
    /// Step costs of the wildcard lists, mirroring `wildcard`.
    pub(crate) wildcard_step_cost: [StepCost; 2],
}

/// The exploded parts of a [`CompiledMachine`].
///
/// This is the escape hatch the verifier's mutation fuzzers use to
/// construct programs the compiler would never emit.
/// [`CompiledMachine::from_raw`] performs **no checking**: executing an
/// unverified raw machine can index out of bounds or loop forever. Gate
/// anything assembled this way through
/// [`crate::analysis::verify_machine`] first — that implication
/// ("verifier accepts ⇒ execution is safe") is exactly what the fuzzers
/// pin down.
#[derive(Clone, Debug)]
pub struct RawMachine {
    /// Flat instruction stream.
    pub code: Vec<Op>,
    /// Literal pool.
    pub lits: Vec<Value>,
    /// Compiled transitions referencing `code` ranges.
    pub transitions: Vec<CompiledTransition>,
    /// Per-kind, per-task transition dispatch lists.
    pub dispatch: [Vec<Vec<u16>>; 2],
    /// Per-kind wildcard transition lists.
    pub wildcard: [Vec<u16>; 2],
    /// Scratch register file size `step` will be given.
    pub max_regs: usize,
    /// Initial state index.
    pub initial_state: u32,
    /// Number of variable slots.
    pub var_count: usize,
    /// Initial variable values, in slot order. Padded/truncated to
    /// `var_count` on reassembly.
    pub var_inits: Vec<Value>,
}

impl CompiledMachine {
    /// Compiles one machine against the application graph at the
    /// default optimization level ([`OptLevel::Full`]).
    pub fn compile(machine: &StateMachine, app: &AppGraph) -> Result<Self, CompileIssue> {
        Self::compile_with(machine, app, crate::opt::OptLevel::default())
    }

    /// Compiles one machine at an explicit optimization level.
    /// [`OptLevel::None`](crate::opt::OptLevel::None) ships the
    /// straight-from-lowering bytecode and serves as the differential
    /// oracle for the optimizer, exactly as `ExecMode::Interpreter`
    /// does for the compiler.
    pub fn compile_with(
        machine: &StateMachine,
        app: &AppGraph,
        opt: crate::opt::OptLevel,
    ) -> Result<Self, CompileIssue> {
        let compiled = Compiler::new(machine, app).run()?;
        Ok(match opt {
            crate::opt::OptLevel::None => compiled,
            crate::opt::OptLevel::Full => crate::opt::optimize_machine(&compiled),
        })
    }

    /// Registers [`CompiledMachine::step`] requires in its scratch file.
    pub fn max_regs(&self) -> usize {
        self.max_regs
    }

    /// Number of bytecode instructions.
    pub fn op_count(&self) -> usize {
        self.code.len()
    }

    /// Number of compiled transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The machine's initial state index.
    pub fn initial_state(&self) -> u32 {
        self.initial_state
    }

    /// Number of variable slots.
    pub fn var_count(&self) -> usize {
        self.var_count
    }

    /// Initial variable values, in slot order.
    pub fn var_inits(&self) -> &[Value] {
        &self.var_inits
    }

    /// The machine's packed FRAM block layout (see
    /// [`crate::layout::MachineLayout`]). Derived data, recomputed
    /// from the bytecode in [`CompiledMachine::from_raw`].
    pub fn layout(&self) -> &MachineLayout {
        &self.layout
    }

    /// Returns `true` when no transition of this machine can match the
    /// event — the O(1) trigger test that lets the engine dismiss the
    /// machine without touching its FRAM state.
    pub fn dismisses(&self, kind: EventKind, task: u32) -> bool {
        self.transition_list(kind, task).is_empty()
    }

    /// Number of transitions the dispatch table routes this event to —
    /// the work a step actually considers (vs. the full transition
    /// count the interpreter scans).
    pub fn dispatch_len(&self, kind: EventKind, task: u32) -> usize {
        self.transition_list(kind, task).len()
    }

    /// `true` when some transition the `(kind, task)` key dispatches
    /// can emit a failure action — i.e. delivering such an event may
    /// produce a verdict from this machine. The static gate callers
    /// use before reordering deliveries around the event.
    pub fn may_emit(&self, kind: EventKind, task: u32) -> bool {
        self.transition_list(kind, task)
            .iter()
            .any(|&ti| self.transitions[ti as usize].emit.is_some())
    }

    /// Explodes the machine into its raw parts (cloned).
    pub fn to_raw(&self) -> RawMachine {
        RawMachine {
            code: self.code.clone(),
            lits: self.lits.clone(),
            transitions: self.transitions.clone(),
            dispatch: self.dispatch.clone(),
            wildcard: self.wildcard.clone(),
            max_regs: self.max_regs,
            initial_state: self.initial_state,
            var_count: self.var_count,
            var_inits: self.var_inits.clone(),
        }
    }

    /// Reassembles a machine from raw parts **without any checking** —
    /// see [`RawMachine`] for the safety contract. Access sets and the
    /// packed layout are recomputed from the (possibly mutated) code,
    /// keeping derived data consistent; `var_inits` is padded with
    /// `Int(0)` / truncated to `var_count`.
    pub fn from_raw(raw: RawMachine) -> Self {
        let (access, wildcard_access) = build_access_sets(
            &raw.code,
            &raw.transitions,
            &raw.dispatch,
            &raw.wildcard,
            raw.var_count,
        );
        let (step_cost, wildcard_step_cost) =
            build_step_costs(&raw.code, &raw.transitions, &raw.dispatch, &raw.wildcard);
        let mut var_inits = raw.var_inits;
        var_inits.resize(raw.var_count, Value::Int(0));
        let layout = MachineLayout::packed(
            &var_inits,
            &raw.code,
            &raw.lits,
            &raw.transitions,
            raw.initial_state,
        );
        CompiledMachine {
            code: raw.code,
            lits: raw.lits,
            transitions: raw.transitions,
            dispatch: raw.dispatch,
            wildcard: raw.wildcard,
            max_regs: raw.max_regs,
            initial_state: raw.initial_state,
            var_count: raw.var_count,
            var_inits,
            access,
            wildcard_access,
            layout,
            step_cost,
            wildcard_step_cost,
        }
    }

    pub(crate) fn transition_list(&self, kind: EventKind, task: u32) -> &[u16] {
        let k = kind_index(kind);
        self.dispatch[k]
            .get(task as usize)
            .map(Vec::as_slice)
            .unwrap_or(&self.wildcard[k])
    }

    /// The static FRAM access set of `(kind, task)` — same fallback
    /// rule as [`CompiledMachine::transition_list`].
    pub fn access(&self, kind: EventKind, task: u32) -> &AccessSet {
        let k = kind_index(kind);
        self.access[k]
            .get(task as usize)
            .unwrap_or(&self.wildcard_access[k])
    }

    /// The static compute ceiling of one `step` for `(kind, task)` —
    /// same fallback rule as [`CompiledMachine::transition_list`]. The
    /// engine bills exactly this many cycles per delivered event
    /// (static and state-independent, so billing never leaks machine
    /// state), and the bounds/energy passes price through the same
    /// table.
    pub fn step_cost(&self, kind: EventKind, task: u32) -> StepCost {
        let k = kind_index(kind);
        self.step_cost[k]
            .get(task as usize)
            .copied()
            .unwrap_or(self.wildcard_step_cost[k])
    }

    /// Feeds one event to the machine: the bytecode counterpart of
    /// [`crate::exec::step`], operating on a caller-owned `(state,
    /// vars)` snapshot and `regs` scratch file (at least
    /// [`CompiledMachine::max_regs`] long). Returns the failure signal
    /// of the taken transition, if any.
    ///
    /// Matches the interpreter bug-for-bug: an evaluation error mid-body
    /// leaves earlier assignments applied and the state unmoved.
    pub fn step(
        &self,
        state: &mut u32,
        vars: &mut [Value],
        event: &CompiledEvent,
        regs: &mut [Value],
    ) -> Result<Option<&EmitFail>, EvalError> {
        self.step_counting(state, vars, event, regs, &mut 0)
    }

    /// [`CompiledMachine::step`] plus an executed-instruction counter:
    /// `executed` grows by the number of bytecode instructions this
    /// delivery actually ran (fused superinstructions count as one),
    /// including the guards of transitions that did not fire. The
    /// engine accumulates these to pin the static
    /// [`StepCost::instructions`] ceiling against reality.
    pub fn step_counting(
        &self,
        state: &mut u32,
        vars: &mut [Value],
        event: &CompiledEvent,
        regs: &mut [Value],
        executed: &mut u64,
    ) -> Result<Option<&EmitFail>, EvalError> {
        debug_assert!(regs.len() >= self.max_regs);
        debug_assert_eq!(vars.len(), self.var_count);

        let mut taken = None;
        for &ti in self.transition_list(event.kind, event.task) {
            let t = &self.transitions[ti as usize];
            if t.from != *state {
                continue;
            }
            let enabled = match &t.guard {
                None => true,
                Some(range) => {
                    self.exec(range.clone(), vars, &event.ctx, regs, executed)?;
                    matches!(regs[0], Value::Bool(true))
                }
            };
            if enabled {
                taken = Some(t);
                break;
            }
        }

        let Some(transition) = taken else {
            // Implicit self-transition: accept silently.
            return Ok(None);
        };

        self.exec(transition.body.clone(), vars, &event.ctx, regs, executed)?;
        *state = transition.to;
        Ok(transition.emit.as_ref())
    }

    /// Runs one instruction range. Guards never touch `vars`; bodies
    /// mutate them through `StoreVar`/`ConstStore`.
    fn exec(
        &self,
        range: Range<u32>,
        vars: &mut [Value],
        ctx: &EventCtx,
        regs: &mut [Value],
        executed: &mut u64,
    ) -> Result<(), EvalError> {
        let mut pc = range.start as usize;
        let end = range.end as usize;
        while pc < end {
            *executed += 1;
            match self.code[pc] {
                Op::Const { dst, lit } => regs[dst as usize] = self.lits[lit as usize],
                Op::LoadVar { dst, slot } => regs[dst as usize] = vars[slot as usize],
                Op::LoadEventTime { dst } => regs[dst as usize] = Value::Time(ctx.time_us),
                Op::LoadDepData { dst } => {
                    regs[dst as usize] =
                        ctx.dep_data.map(Value::Float).ok_or(EvalError::NoDepData)?
                }
                Op::LoadEnergy { dst } => {
                    regs[dst as usize] =
                        Value::Int(i64::try_from(ctx.energy_nj).unwrap_or(i64::MAX))
                }
                Op::Bin { op, dst, a, b } => {
                    regs[dst as usize] = apply(op, regs[a as usize], regs[b as usize])?
                }
                Op::Not { dst, src } => {
                    regs[dst as usize] = Value::Bool(!regs[src as usize].as_bool()?)
                }
                Op::AssertBool { src } => {
                    regs[src as usize].as_bool()?;
                }
                Op::JumpIfFalse { src, target } => {
                    if !regs[src as usize].as_bool()? {
                        pc = target as usize;
                        continue;
                    }
                }
                Op::JumpIfTrue { src, target } => {
                    if regs[src as usize].as_bool()? {
                        pc = target as usize;
                        continue;
                    }
                }
                Op::Jump { target } => {
                    pc = target as usize;
                    continue;
                }
                Op::StoreVar { slot, src } => {
                    vars[slot as usize] = coerce(regs[src as usize], vars[slot as usize])?
                }
                Op::CmpBranch {
                    op,
                    dst,
                    a,
                    b,
                    target,
                    when,
                } => {
                    let v = apply(op, regs[a as usize], regs[b as usize])?;
                    regs[dst as usize] = v;
                    if v.as_bool()? == when {
                        pc = target as usize;
                        continue;
                    }
                }
                Op::LoadCmpBranch {
                    op,
                    dst,
                    slot,
                    lit,
                    target,
                    when,
                } => {
                    let v = apply(op, vars[slot as usize], self.lits[lit as usize])?;
                    regs[dst as usize] = v;
                    if v.as_bool()? == when {
                        pc = target as usize;
                        continue;
                    }
                }
                Op::ConstStore { slot, lit } => {
                    vars[slot as usize] = coerce(self.lits[lit as usize], vars[slot as usize])?
                }
            }
            pc += 1;
        }
        Ok(())
    }
}

/// Per-machine compilation state.
struct Compiler<'a> {
    machine: &'a StateMachine,
    app: &'a AppGraph,
    code: Vec<Op>,
    lits: Vec<Value>,
    max_regs: usize,
}

impl<'a> Compiler<'a> {
    fn new(machine: &'a StateMachine, app: &'a AppGraph) -> Self {
        Compiler {
            machine,
            app,
            code: Vec::new(),
            lits: Vec::new(),
            max_regs: 0,
        }
    }

    fn run(mut self) -> Result<CompiledMachine, CompileIssue> {
        if self.machine.vars.len() > u16::MAX as usize
            || self.machine.transitions.len() > u16::MAX as usize
        {
            return Err(CompileIssue::TooLarge);
        }

        let mut transitions = Vec::with_capacity(self.machine.transitions.len());
        for t in &self.machine.transitions {
            transitions.push(self.compile_transition(t)?);
        }

        // Dispatch tables: for each event kind and task id, the
        // transitions (by priority) whose trigger can match.
        let task_count = self.app.task_count();
        let mut dispatch = [vec![Vec::new(); task_count], vec![Vec::new(); task_count]];
        let mut wildcard = [Vec::new(), Vec::new()];
        for (ti, t) in self.machine.transitions.iter().enumerate() {
            let ti = ti as u16;
            let kinds: &[usize] = match &t.trigger {
                Trigger::Any => &[0, 1],
                Trigger::Start(_) => &[0],
                Trigger::End(_) => &[1],
            };
            let pat = match &t.trigger {
                Trigger::Any => &TaskPat::Any,
                Trigger::Start(p) | Trigger::End(p) => p,
            };
            match pat {
                TaskPat::Any => {
                    for &k in kinds {
                        for list in dispatch[k].iter_mut() {
                            list.push(ti);
                        }
                        wildcard[k].push(ti);
                    }
                }
                TaskPat::Named(name) => {
                    let id = self
                        .app
                        .task_by_name(name)
                        .ok_or(CompileIssue::UnknownTask { task: name.clone() })?;
                    for &k in kinds {
                        dispatch[k][id.0 as usize].push(ti);
                    }
                }
            }
        }

        let (access, wildcard_access) = build_access_sets(
            &self.code,
            &transitions,
            &dispatch,
            &wildcard,
            self.machine.vars.len(),
        );
        let (step_cost, wildcard_step_cost) =
            build_step_costs(&self.code, &transitions, &dispatch, &wildcard);
        let var_inits = self.machine.initial_vars();
        let layout = MachineLayout::packed(
            &var_inits,
            &self.code,
            &self.lits,
            &transitions,
            self.machine.initial,
        );
        Ok(CompiledMachine {
            code: self.code,
            lits: self.lits,
            transitions,
            dispatch,
            wildcard,
            max_regs: self.max_regs,
            initial_state: self.machine.initial,
            var_count: self.machine.vars.len(),
            var_inits,
            access,
            wildcard_access,
            layout,
            step_cost,
            wildcard_step_cost,
        })
    }

    fn compile_transition(&mut self, t: &Transition) -> Result<CompiledTransition, CompileIssue> {
        let guard = match &t.guard {
            None => None,
            Some(g) => {
                let start = self.here()?;
                self.compile_expr(g, 0)?;
                Some(start..self.here()?)
            }
        };
        let start = self.here()?;
        self.compile_body(&t.body)?;
        Ok(CompiledTransition {
            from: t.from,
            to: t.to,
            guard,
            body: start..self.here()?,
            emit: t.emit.clone(),
        })
    }

    fn compile_body(&mut self, body: &[Stmt]) -> Result<(), CompileIssue> {
        for stmt in body {
            match stmt {
                Stmt::Assign(name, expr) => {
                    self.compile_expr(expr, 0)?;
                    let slot = self.slot(name)?;
                    self.code.push(Op::StoreVar { slot, src: 0 });
                }
                Stmt::If(cond, then_body, else_body) => {
                    self.compile_expr(cond, 0)?;
                    let to_else = self.emit_placeholder();
                    self.compile_body(then_body)?;
                    // An empty else arm needs no jump over it — emitting
                    // one would produce a self-fall-through
                    // `Jump { target: pc + 1 }`.
                    let to_end = if else_body.is_empty() {
                        None
                    } else {
                        Some(self.emit_placeholder())
                    };
                    let else_start = self.here()?;
                    self.code[to_else] = Op::JumpIfFalse {
                        src: 0,
                        target: else_start,
                    };
                    self.compile_body(else_body)?;
                    let end = self.here()?;
                    if let Some(to_end) = to_end {
                        self.code[to_end] = Op::Jump { target: end };
                    }
                }
            }
        }
        Ok(())
    }

    /// Lowers `expr` so its value lands in register `base`, using
    /// registers `base..` as an expression stack.
    fn compile_expr(&mut self, expr: &Expr, base: u16) -> Result<(), CompileIssue> {
        self.max_regs = self.max_regs.max(base as usize + 1);
        match expr {
            Expr::Lit(v) => {
                let lit = self.lit(*v)?;
                self.code.push(Op::Const { dst: base, lit });
            }
            Expr::Var(name) => {
                let slot = self.slot(name)?;
                self.code.push(Op::LoadVar { dst: base, slot });
            }
            Expr::EventTime => self.code.push(Op::LoadEventTime { dst: base }),
            Expr::DepData => self.code.push(Op::LoadDepData { dst: base }),
            Expr::EnergyLevel => self.code.push(Op::LoadEnergy { dst: base }),
            Expr::Not(inner) => {
                self.compile_expr(inner, base)?;
                self.code.push(Op::Not {
                    dst: base,
                    src: base,
                });
            }
            Expr::Bin(op @ (BinOp::And | BinOp::Or), lhs, rhs) => {
                // Short-circuit: the left value doubles as the result
                // when it decides the outcome.
                self.compile_expr(lhs, base)?;
                let skip = self.emit_placeholder();
                self.compile_expr(rhs, base)?;
                self.code.push(Op::AssertBool { src: base });
                let end = self.here()?;
                self.code[skip] = if *op == BinOp::And {
                    Op::JumpIfFalse {
                        src: base,
                        target: end,
                    }
                } else {
                    Op::JumpIfTrue {
                        src: base,
                        target: end,
                    }
                };
            }
            Expr::Bin(op, lhs, rhs) => {
                self.compile_expr(lhs, base)?;
                let rhs_reg = base.checked_add(1).ok_or(CompileIssue::TooLarge)?;
                self.compile_expr(rhs, rhs_reg)?;
                self.code.push(Op::Bin {
                    op: *op,
                    dst: base,
                    a: base,
                    b: rhs_reg,
                });
            }
        }
        Ok(())
    }

    fn slot(&self, name: &str) -> Result<u16, CompileIssue> {
        self.machine
            .var_index(name)
            .map(|i| i as u16)
            .ok_or_else(|| CompileIssue::UnknownVar {
                name: name.to_string(),
            })
    }

    fn lit(&mut self, v: Value) -> Result<u16, CompileIssue> {
        // Values are PartialEq (not Eq: floats), so a linear scan dedups
        // the tiny pools generated monitors produce.
        let idx = match self.lits.iter().position(|l| *l == v) {
            Some(i) => i,
            None => {
                self.lits.push(v);
                self.lits.len() - 1
            }
        };
        u16::try_from(idx).map_err(|_| CompileIssue::TooLarge)
    }

    fn here(&self) -> Result<u32, CompileIssue> {
        u32::try_from(self.code.len()).map_err(|_| CompileIssue::TooLarge)
    }

    /// Reserves one instruction to be patched with a jump later.
    fn emit_placeholder(&mut self) -> usize {
        self.code.push(Op::Jump { target: 0 });
        self.code.len() - 1
    }
}

/// The install-time routing index: for every `(event kind, task id)`
/// key, the exact set of machines with at least one transition whose
/// trigger can match such an event. Triggers are static, so the index
/// is computed once per installation; the engine uses it to arm only
/// the *interested* machines per event — dismissed machines are never
/// read, stepped, or counter-written — taking event dispatch from
/// O(installed machines) to O(interested machines).
#[derive(Debug)]
pub struct RoutingIndex {
    /// `interested[kind][task id]` → machine indices (suite order) with
    /// a transition that can match, including wildcard-triggered ones.
    interested: [Vec<Vec<u16>>; 2],
    /// Machines with a wildcard transition per kind — the worklist for
    /// task ids beyond the application graph.
    wildcard: [Vec<u16>; 2],
}

impl RoutingIndex {
    pub(crate) fn build(machines: &[CompiledMachine], task_count: usize) -> Self {
        let mut interested = [vec![Vec::new(); task_count], vec![Vec::new(); task_count]];
        let mut wildcard = [Vec::new(), Vec::new()];
        for (mi, m) in machines.iter().enumerate() {
            let mi = mi as u16;
            for (k, kind) in [EventKind::StartTask, EventKind::EndTask]
                .into_iter()
                .enumerate()
            {
                for (task, list) in interested[k].iter_mut().enumerate() {
                    if !m.dismisses(kind, task as u32) {
                        list.push(mi);
                    }
                }
                // An out-of-graph id falls through to each machine's
                // wildcard transition list.
                if !m.dismisses(kind, u32::MAX) {
                    wildcard[k].push(mi);
                }
            }
        }
        RoutingIndex {
            interested,
            wildcard,
        }
    }

    /// The machines interested in `(kind, task)`, in suite order. Task
    /// ids beyond the application graph resolve to the wildcard set.
    pub fn interested(&self, kind: EventKind, task: u32) -> &[u16] {
        let k = kind_index(kind);
        self.interested[k]
            .get(task as usize)
            .map(Vec::as_slice)
            .unwrap_or(&self.wildcard[k])
    }

    /// The per-kind wildcard machine set.
    pub fn wildcard(&self, kind: EventKind) -> &[u16] {
        &self.wildcard[kind_index(kind)]
    }
}

/// A whole suite compiled against one application graph, plus the task
/// name table interned once for everything that still needs names (the
/// reference interpreter path, verdict reports) and the global
/// [`RoutingIndex`] over all machines.
pub struct CompiledSuite {
    machines: Vec<CompiledMachine>,
    task_names: Box<[Box<str>]>,
    max_regs: usize,
    routing: RoutingIndex,
}

impl CompiledSuite {
    /// Compiles every machine of `suite` against `app` at the default
    /// optimization level ([`OptLevel::Full`]) and builds the global
    /// routing index.
    pub fn compile(suite: &MonitorSuite, app: &AppGraph) -> Result<Self, CompileIssue> {
        Self::compile_with(suite, app, crate::opt::OptLevel::default())
    }

    /// Compiles every machine at an explicit optimization level — see
    /// [`CompiledMachine::compile_with`].
    pub fn compile_with(
        suite: &MonitorSuite,
        app: &AppGraph,
        opt: crate::opt::OptLevel,
    ) -> Result<Self, CompileIssue> {
        if suite.machines().len() > u16::MAX as usize {
            return Err(CompileIssue::TooLarge);
        }
        let machines = suite
            .machines()
            .iter()
            .map(|m| CompiledMachine::compile_with(m, app, opt))
            .collect::<Result<Vec<_>, _>>()?;
        let max_regs = machines
            .iter()
            .map(CompiledMachine::max_regs)
            .max()
            .unwrap_or(0);
        let routing = RoutingIndex::build(&machines, app.task_count());
        Ok(CompiledSuite {
            machines,
            task_names: app
                .tasks()
                .iter()
                .map(|t| t.name.clone().into_boxed_str())
                .collect(),
            max_regs,
            routing,
        })
    }

    /// Compiled machines, in suite order.
    pub fn machines(&self) -> &[CompiledMachine] {
        &self.machines
    }

    /// The global routing index over all machines.
    pub fn routing(&self) -> &RoutingIndex {
        &self.routing
    }

    /// Largest scratch register file any machine needs.
    pub fn max_regs(&self) -> usize {
        self.max_regs
    }

    /// Number of tasks in the application graph the suite was compiled
    /// against.
    pub fn task_count(&self) -> usize {
        self.task_names.len()
    }

    /// Replaces machine `idx` with one reassembled from raw parts,
    /// rebuilding the routing index and the suite-wide register-file
    /// size. Like [`CompiledMachine::from_raw`], this performs **no
    /// checking** — it exists so the mutation fuzzers and rejection
    /// tests can present arbitrary programs to the install-time
    /// analyser.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_machine(&mut self, idx: usize, raw: RawMachine) {
        self.machines[idx] = CompiledMachine::from_raw(raw);
        self.max_regs = self
            .machines
            .iter()
            .map(CompiledMachine::max_regs)
            .max()
            .unwrap_or(0);
        self.routing = RoutingIndex::build(&self.machines, self.task_names.len());
    }

    /// Resolves a dense task id back to its source name ("" when out of
    /// range), without re-cloning: the table is interned at compile
    /// time and shared by all machines.
    pub fn task_name(&self, id: u32) -> &str {
        self.task_names
            .get(id as usize)
            .map(AsRef::as_ref)
            .unwrap_or("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{step, IrEvent, MachineState};
    use crate::expr::VarType;
    use artemis_core::app::AppGraphBuilder;
    use artemis_core::property::OnFail;

    fn app() -> AppGraph {
        let mut b = AppGraphBuilder::new();
        let a = b.task("a");
        let s = b.task("b");
        b.path(&[a, s]);
        b.build().unwrap()
    }

    fn ctx(t: u64) -> EventCtx {
        EventCtx {
            time_us: t,
            dep_data: None,
            energy_nj: 0,
        }
    }

    /// Runs an event through both the interpreter and the bytecode and
    /// asserts identical outcomes.
    fn both(
        m: &StateMachine,
        c: &CompiledMachine,
        istate: &mut MachineState,
        cstate: &mut (u32, Vec<Value>),
        kind: EventKind,
        task: &str,
        ctx: EventCtx,
    ) -> Option<EmitFail> {
        let app = app();
        let iresult = step(m, istate, &IrEvent { kind, task, ctx });
        let mut regs = vec![Value::Int(0); c.max_regs().max(1)];
        let task_id = app.task_by_name(task).map(|t| t.0).unwrap_or(u32::MAX);
        let cresult = c
            .step(
                &mut cstate.0,
                &mut cstate.1,
                &CompiledEvent {
                    kind,
                    task: task_id,
                    ctx,
                },
                &mut regs,
            )
            .map(|e| e.cloned());
        assert_eq!(iresult, cresult, "emit mismatch");
        assert_eq!(istate.state, cstate.0, "state mismatch");
        assert_eq!(istate.vars, cstate.1, "vars mismatch");
        iresult.unwrap_or(None)
    }

    /// The counting machine of the exec tests: compiled behaviour must
    /// match transition for transition.
    #[test]
    fn compiled_matches_interpreter_on_counting_machine() {
        let mut m = StateMachine::new("m", "a");
        m.add_var("i", VarType::Int, Value::Int(0));
        let idle = m.add_state("Idle");
        let busy = m.add_state("Busy");
        m.transitions.push(Transition {
            from: idle,
            to: busy,
            trigger: Trigger::Start(TaskPat::named("a")),
            guard: None,
            body: vec![Stmt::Assign("i".into(), Expr::int(1))],
            emit: None,
        });
        m.transitions.push(Transition {
            from: busy,
            to: busy,
            trigger: Trigger::Start(TaskPat::named("a")),
            guard: Some(Expr::bin(BinOp::Lt, Expr::var("i"), Expr::int(2))),
            body: vec![Stmt::Assign(
                "i".into(),
                Expr::bin(BinOp::Add, Expr::var("i"), Expr::int(1)),
            )],
            emit: None,
        });
        m.transitions.push(Transition {
            from: busy,
            to: idle,
            trigger: Trigger::Start(TaskPat::named("a")),
            guard: Some(Expr::bin(BinOp::Ge, Expr::var("i"), Expr::int(2))),
            body: vec![Stmt::Assign("i".into(), Expr::int(0))],
            emit: Some(EmitFail {
                action: OnFail::SkipPath,
                path: Some(1),
            }),
        });
        let c = CompiledMachine::compile(&m, &app()).unwrap();
        let mut is = MachineState::initial(&m);
        let mut cs = (c.initial_state(), m.initial_vars());

        for t in 0..2 {
            let emit = both(&m, &c, &mut is, &mut cs, EventKind::StartTask, "a", ctx(t));
            assert!(emit.is_none());
        }
        let emit = both(&m, &c, &mut is, &mut cs, EventKind::StartTask, "a", ctx(2));
        assert_eq!(emit.unwrap().action, OnFail::SkipPath);
        // Unrelated task: implicit self-transition on both sides.
        both(&m, &c, &mut is, &mut cs, EventKind::StartTask, "b", ctx(3));
    }

    #[test]
    fn short_circuit_and_if_else_compile_correctly() {
        let mut m = StateMachine::new("m", "a");
        m.add_var("x", VarType::Int, Value::Int(0));
        m.add_var("flag", VarType::Bool, Value::Bool(false));
        m.add_state("S");
        // if (flag || x < 2) { x := x + 1 } else { x := 100 }, and
        // flag := !flag && x > 1.
        m.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::Any,
            guard: None,
            body: vec![
                Stmt::If(
                    Expr::or(
                        Expr::var("flag"),
                        Expr::bin(BinOp::Lt, Expr::var("x"), Expr::int(2)),
                    ),
                    vec![Stmt::Assign(
                        "x".into(),
                        Expr::bin(BinOp::Add, Expr::var("x"), Expr::int(1)),
                    )],
                    vec![Stmt::Assign("x".into(), Expr::int(100))],
                ),
                Stmt::Assign(
                    "flag".into(),
                    Expr::and(
                        Expr::Not(Box::new(Expr::var("flag"))),
                        Expr::bin(BinOp::Gt, Expr::var("x"), Expr::int(1)),
                    ),
                ),
            ],
            emit: None,
        });
        let c = CompiledMachine::compile(&m, &app()).unwrap();
        let mut is = MachineState::initial(&m);
        let mut cs = (c.initial_state(), m.initial_vars());
        for t in 0..6 {
            both(&m, &c, &mut is, &mut cs, EventKind::StartTask, "a", ctx(t));
        }
    }

    #[test]
    fn builtins_and_errors_match_interpreter() {
        let mut m = StateMachine::new("m", "a");
        m.add_var("last", VarType::Time, Value::Time(0));
        m.add_var("temp", VarType::Float, Value::Float(0.0));
        m.add_state("S");
        m.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::End(TaskPat::named("a")),
            guard: Some(Expr::bin(BinOp::Ge, Expr::DepData, Expr::float(0.0))),
            body: vec![
                Stmt::Assign("last".into(), Expr::EventTime),
                Stmt::Assign("temp".into(), Expr::DepData),
            ],
            emit: None,
        });
        let c = CompiledMachine::compile(&m, &app()).unwrap();
        let mut is = MachineState::initial(&m);
        let mut cs = (c.initial_state(), m.initial_vars());
        let with_data = EventCtx {
            time_us: 42,
            dep_data: Some(36.5),
            energy_nj: 7,
        };
        both(&m, &c, &mut is, &mut cs, EventKind::EndTask, "a", with_data);
        assert_eq!(cs.1, vec![Value::Time(42), Value::Float(36.5)]);
        // depData on an event without data: both sides error identically
        // (checked inside `both` via result equality).
        both(&m, &c, &mut is, &mut cs, EventKind::EndTask, "a", ctx(50));
    }

    #[test]
    fn access_sets_capture_per_key_slots_and_degrade() {
        let mut m = StateMachine::new("m", "a");
        for v in ["v0", "v1", "v2", "v3"] {
            m.add_var(v, VarType::Int, Value::Int(0));
        }
        m.add_state("S");
        // start(a): guard reads v0, body does v1 := v1 + 1 — touches
        // 2/4 slots, stays sparse.
        m.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::Start(TaskPat::named("a")),
            guard: Some(Expr::bin(BinOp::Lt, Expr::var("v0"), Expr::int(2))),
            body: vec![Stmt::Assign(
                "v1".into(),
                Expr::bin(BinOp::Add, Expr::var("v1"), Expr::int(1)),
            )],
            emit: None,
        });
        // start(b): writes every slot — 4/4 ≥ ¾ degrades to whole-block.
        m.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::Start(TaskPat::named("b")),
            guard: None,
            body: (0..4)
                .map(|i| Stmt::Assign(format!("v{i}"), Expr::int(9)))
                .collect(),
            emit: None,
        });
        let c = CompiledMachine::compile(&m, &app()).unwrap();

        let a = c.access(EventKind::StartTask, 0);
        assert_eq!(a.reads, vec![0, 1]);
        assert_eq!(a.writes, vec![1]);
        assert_eq!(a.touched_count(), 2);
        assert_eq!(a.max_touched_slot(), Some(1));
        assert!(!a.whole_block);

        let b = c.access(EventKind::StartTask, 1);
        assert_eq!(b.reads, Vec::<u16>::new());
        assert_eq!(b.writes, vec![0, 1, 2, 3]);
        assert!(b.whole_block);

        // Unrouted keys and out-of-graph ids have empty access sets.
        let end = c.access(EventKind::EndTask, 0);
        assert!(end.reads.is_empty() && end.writes.is_empty());
        let far = c.access(EventKind::StartTask, 999);
        assert!(far.reads.is_empty() && far.writes.is_empty());
        assert_eq!(far.max_touched_slot(), None);
    }

    #[test]
    fn access_set_union_merges_sorted_and_sticks_whole_block() {
        let mut a = AccessSet {
            reads: vec![1, 4],
            writes: vec![4],
            whole_block: false,
        };
        let b = AccessSet {
            reads: vec![0, 4, 7],
            writes: vec![2, 4],
            whole_block: false,
        };
        a.union_with(&b);
        assert_eq!(a.reads, vec![0, 1, 4, 7]);
        assert_eq!(a.writes, vec![2, 4]);
        assert!(!a.whole_block);

        // Empty other is the identity; whole_block is sticky.
        let before = a.clone();
        a.union_with(&AccessSet::default());
        assert_eq!(a, before);
        a.union_with(&AccessSet {
            whole_block: true,
            ..AccessSet::default()
        });
        assert!(a.whole_block);
        assert_eq!(a.reads, before.reads);
    }

    #[test]
    fn from_raw_recomputes_access_sets_from_mutated_code() {
        let mut m = StateMachine::new("m", "a");
        m.add_var("x", VarType::Int, Value::Int(0));
        m.add_var("y", VarType::Int, Value::Int(0));
        m.add_var("z", VarType::Int, Value::Int(0));
        m.add_state("S");
        m.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::Start(TaskPat::named("a")),
            guard: None,
            body: vec![Stmt::Assign("x".into(), Expr::int(1))],
            emit: None,
        });
        let c = CompiledMachine::compile(&m, &app()).unwrap();
        assert_eq!(c.access(EventKind::StartTask, 0).writes, vec![0]);

        // Retarget the store to slot 2: the reassembled machine's
        // access set must follow the code, not the original spec.
        // The optimizer fuses `Const; StoreVar` into `ConstStore`, so
        // match both encodings of the write.
        let mut raw = c.to_raw();
        for op in raw.code.iter_mut() {
            match op {
                Op::StoreVar { slot, .. } | Op::ConstStore { slot, .. } => *slot = 2,
                _ => {}
            }
        }
        let c2 = CompiledMachine::from_raw(raw);
        assert_eq!(c2.access(EventKind::StartTask, 0).writes, vec![2]);
    }

    #[test]
    fn dispatch_dismisses_unobserved_events() {
        let mut m = StateMachine::new("m", "a");
        m.add_state("S");
        m.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::Start(TaskPat::named("a")),
            guard: None,
            body: vec![],
            emit: None,
        });
        let c = CompiledMachine::compile(&m, &app()).unwrap();
        assert!(!c.dismisses(EventKind::StartTask, 0));
        assert!(c.dismisses(EventKind::EndTask, 0));
        assert!(c.dismisses(EventKind::StartTask, 1));
        // Out-of-graph ids fall back to wildcard lists (empty here).
        assert!(c.dismisses(EventKind::StartTask, 999));
    }

    #[test]
    fn wildcard_triggers_match_everything() {
        let mut m = StateMachine::new("m", "a");
        m.add_var("n", VarType::Int, Value::Int(0));
        m.add_state("S");
        m.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::Any,
            guard: None,
            body: vec![Stmt::Assign(
                "n".into(),
                Expr::bin(BinOp::Add, Expr::var("n"), Expr::int(1)),
            )],
            emit: None,
        });
        let c = CompiledMachine::compile(&m, &app()).unwrap();
        assert!(!c.dismisses(EventKind::StartTask, 0));
        assert!(!c.dismisses(EventKind::EndTask, 1));
        assert!(!c.dismisses(EventKind::StartTask, 12345));

        let mut is = MachineState::initial(&m);
        let mut cs = (c.initial_state(), m.initial_vars());
        both(&m, &c, &mut is, &mut cs, EventKind::EndTask, "b", ctx(0));
        assert_eq!(cs.1[0], Value::Int(1));
    }

    #[test]
    fn compile_rejects_unknown_names() {
        let mut m = StateMachine::new("m", "a");
        m.add_state("S");
        m.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::Start(TaskPat::named("ghost")),
            guard: None,
            body: vec![],
            emit: None,
        });
        assert_eq!(
            CompiledMachine::compile(&m, &app()).unwrap_err(),
            CompileIssue::UnknownTask {
                task: "ghost".into()
            }
        );

        let mut m = StateMachine::new("m", "a");
        m.add_state("S");
        m.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::Any,
            guard: Some(Expr::var("ghost")),
            body: vec![],
            emit: None,
        });
        let err = CompiledMachine::compile(&m, &app()).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn routing_index_matches_per_machine_dismissal() {
        let app = app();
        // Machine 0 observes starts of `a`; machine 1 observes ends of
        // `b`; machine 2 is wildcard-triggered.
        let spec = "a { maxTries: 3 onFail: skipPath; }";
        let mut suite = crate::compile(spec, &app).unwrap();
        {
            let mut m = StateMachine::new("ends_b", "b");
            m.add_state("S");
            m.transitions.push(Transition {
                from: 0,
                to: 0,
                trigger: Trigger::End(TaskPat::named("b")),
                guard: None,
                body: vec![],
                emit: None,
            });
            suite.push(m);
            let mut w = StateMachine::new("wild", "a");
            w.add_state("S");
            w.transitions.push(Transition {
                from: 0,
                to: 0,
                trigger: Trigger::Any,
                guard: None,
                body: vec![],
                emit: None,
            });
            suite.push(w);
        }
        let cs = CompiledSuite::compile(&suite, &app).unwrap();
        let r = cs.routing();

        // The index must agree with each machine's own dismissal test
        // on every in-graph key.
        for kind in [EventKind::StartTask, EventKind::EndTask] {
            for task in 0..2u32 {
                let listed: Vec<u16> = r.interested(kind, task).to_vec();
                for (mi, m) in cs.machines().iter().enumerate() {
                    assert_eq!(
                        listed.contains(&(mi as u16)),
                        !m.dismisses(kind, task),
                        "index/dismissal disagree for machine {mi}, {kind:?}, task {task}"
                    );
                }
            }
        }
        // Wildcard set contains exactly the wildcard machine, and
        // out-of-graph ids resolve to it.
        let wild_idx = (cs.machines().len() - 1) as u16;
        assert_eq!(r.wildcard(EventKind::StartTask), &[wild_idx]);
        assert_eq!(r.interested(EventKind::EndTask, 999), &[wild_idx]);
        // maxTries observes task `a` only: its machine is routed for
        // `a`'s events and dismissed for `b`'s starts.
        assert!(r.interested(EventKind::StartTask, 0).contains(&0));
        assert!(!r.interested(EventKind::StartTask, 1).contains(&0));
    }

    #[test]
    fn routing_index_preserves_suite_order() {
        let app = app();
        let spec = "a { maxTries: 3 onFail: skipPath; }\n\
                    a { maxTries: 5 onFail: restartTask; }\n\
                    a { period: 1s onFail: restartTask; }";
        let suite = crate::compile(spec, &app).unwrap();
        let cs = CompiledSuite::compile(&suite, &app).unwrap();
        let starts_a = cs.routing().interested(EventKind::StartTask, 0);
        let mut sorted = starts_a.to_vec();
        sorted.sort_unstable();
        assert_eq!(starts_a, &sorted[..], "worklists must be in suite order");
        assert!(!starts_a.is_empty());
    }

    #[test]
    fn suite_compiles_and_interns_names() {
        let app = app();
        let suite = crate::compile("a { maxTries: 3 onFail: skipPath; }", &app).unwrap();
        let cs = CompiledSuite::compile(&suite, &app).unwrap();
        assert_eq!(cs.machines().len(), suite.len());
        assert_eq!(cs.task_name(0), "a");
        assert_eq!(cs.task_name(1), "b");
        assert_eq!(cs.task_name(99), "");
        assert!(cs.max_regs() >= 1);
        assert!(cs.machines()[0].op_count() > 0);
        assert!(cs.machines()[0].transition_count() > 0);
    }
}
