//! The model-to-model transformation: properties → state machines.
//!
//! Each property in a resolved
//! [`artemis_core::property::PropertySet`] becomes one
//! state machine, following the four shapes of the paper's Figure 7
//! (plus `period`, `dpData` and the `energy` extension):
//!
//! - **maxTries** — two states; a counter of start attempts that resets
//!   on task completion and fails once the attempt budget is spent;
//! - **maxDuration** — two states; the start timestamp is latched once
//!   (re-attempt starts take the implicit self-transition, preserving
//!   the *first* attempt's timestamp exactly as §4.1.3 requires) and
//!   any event past the deadline fails;
//! - **collect** — one state counting `dpTask` completions; a start of
//!   the consumer with too few samples fails. *Deviation from the
//!   paper's Figure 7 narration*: the counter is **not** reset on
//!   failure — it accumulates across path restarts — and it is consumed
//!   at the consumer's *completion*, not at its start. With
//!   reset-on-failure the paper's own Path #1 (collect ten `bodyTemp`
//!   samples via repeated path restarts, §5.1) could never terminate,
//!   and with consume-on-start a power failure inside the consumer
//!   would strand its re-attempt without data. See EXPERIMENTS.md for
//!   the fidelity note.
//! - **MITD** — two states latching the dependee's completion time; a
//!   late consumer start fails, with the optional `maxAttempt`
//!   escalation counting failures and eventually firing the terminal
//!   action (the paper's anti-non-termination device);
//! - **period** — consecutive starts of a task must be no further
//!   apart than `interval + jitter`;
//! - **dpData** — the monitored output must stay in range;
//! - **energy** — the capacitor must hold a minimum charge at start.

use artemis_core::app::AppGraph;
use artemis_core::property::{MaxAttempt, OnFail, PropertyKind, PropertySet, TaskProperty};

use crate::expr::{BinOp, Expr, Value, VarType};
use crate::fsm::{EmitFail, MonitorSuite, StateMachine, Stmt, TaskPat, Transition, Trigger};

/// Errors from lowering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// A property referenced a task id not present in the graph
    /// (internal inconsistency between set and graph).
    DanglingTask,
}

impl core::fmt::Display for LowerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LowerError::DanglingTask => write!(f, "property references a task not in the graph"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lowers every property of `set` to a state machine.
pub fn lower_set(set: &PropertySet, app: &AppGraph) -> Result<MonitorSuite, LowerError> {
    let mut suite = MonitorSuite::new();
    for (index, entry) in set.entries().iter().enumerate() {
        suite.push(lower_property(entry, index, app)?);
    }
    Ok(suite)
}

fn task_name(app: &AppGraph, id: artemis_core::app::TaskId) -> Result<String, LowerError> {
    app.tasks()
        .get(id.index())
        .map(|t| t.name.clone())
        .ok_or(LowerError::DanglingTask)
}

fn lower_property(
    entry: &TaskProperty,
    index: usize,
    app: &AppGraph,
) -> Result<StateMachine, LowerError> {
    let task = task_name(app, entry.task)?;
    let prop = &entry.property;
    let path = prop.path.map(|p| p.number());
    let name = format!("{}_{}_{}", task, prop.kind.keyword(), index);

    let mut m = match &prop.kind {
        PropertyKind::MaxTries { max } => lower_max_tries(&task, *max, prop.on_fail, path),
        PropertyKind::MaxDuration { limit } => {
            lower_max_duration(&task, limit.as_micros(), prop.on_fail, path)
        }
        PropertyKind::Collect { count, dp_task } => lower_collect(
            &task,
            &task_name(app, *dp_task)?,
            *count,
            prop.on_fail,
            path,
        ),
        PropertyKind::Mitd {
            limit,
            dp_task,
            max_attempt,
        } => lower_mitd(
            &task,
            &task_name(app, *dp_task)?,
            limit.as_micros(),
            prop.on_fail,
            *max_attempt,
            path,
        ),
        PropertyKind::Period {
            interval,
            jitter,
            max_attempt,
        } => lower_period(
            &task,
            interval.as_micros(),
            jitter.as_micros(),
            prop.on_fail,
            *max_attempt,
            path,
        ),
        PropertyKind::DpData { var: _, lo, hi } => {
            lower_dp_data(&task, *lo, *hi, prop.on_fail, path)
        }
        PropertyKind::Energy { min_nanojoules } => {
            lower_energy(&task, *min_nanojoules, prop.on_fail, path)
        }
    };
    m.name = name;
    m.path = path;
    Ok(m)
}

fn emit(action: OnFail, path: Option<u32>) -> Option<EmitFail> {
    Some(EmitFail { action, path })
}

fn assign(name: &str, e: Expr) -> Stmt {
    Stmt::Assign(name.to_string(), e)
}

fn incr(name: &str) -> Stmt {
    assign(name, Expr::bin(BinOp::Add, Expr::var(name), Expr::int(1)))
}

/// Figure 7, first machine.
fn lower_max_tries(task: &str, max: u32, on_fail: OnFail, path: Option<u32>) -> StateMachine {
    let mut m = StateMachine::new("", task);
    // Re-initialising on a path restart is correct here: a restart is a
    // fresh execution sequence for the task.
    m.reset_on_path_restart = true;
    m.add_var("i", VarType::Int, Value::Int(0));
    let not_started = m.add_state("NotStarted");
    let started = m.add_state("Started");

    m.transitions.push(Transition {
        from: not_started,
        to: started,
        trigger: Trigger::Start(TaskPat::named(task)),
        guard: None,
        body: vec![assign("i", Expr::int(1))],
        emit: None,
    });
    m.transitions.push(Transition {
        from: started,
        to: started,
        trigger: Trigger::Start(TaskPat::named(task)),
        guard: Some(Expr::bin(BinOp::Lt, Expr::var("i"), Expr::int(max as i64))),
        body: vec![incr("i")],
        emit: None,
    });
    m.transitions.push(Transition {
        from: started,
        to: not_started,
        trigger: Trigger::Start(TaskPat::named(task)),
        guard: Some(Expr::bin(BinOp::Ge, Expr::var("i"), Expr::int(max as i64))),
        body: vec![assign("i", Expr::int(0))],
        emit: emit(on_fail, path),
    });
    m.transitions.push(Transition {
        from: started,
        to: not_started,
        trigger: Trigger::End(TaskPat::named(task)),
        guard: None,
        body: vec![assign("i", Expr::int(0))],
        emit: None,
    });
    m
}

/// Figure 7, second machine.
fn lower_max_duration(
    task: &str,
    limit_us: u64,
    on_fail: OnFail,
    path: Option<u32>,
) -> StateMachine {
    let mut m = StateMachine::new("", task);
    m.reset_on_path_restart = true;
    m.add_var("start", VarType::Time, Value::Time(0));
    let idle = m.add_state("Idle");
    let started = m.add_state("Started");
    let elapsed = Expr::bin(BinOp::Sub, Expr::EventTime, Expr::var("start"));

    m.transitions.push(Transition {
        from: idle,
        to: started,
        trigger: Trigger::Start(TaskPat::named(task)),
        guard: None,
        body: vec![assign("start", Expr::EventTime)],
        emit: None,
    });
    // In-time completion satisfies the property.
    m.transitions.push(Transition {
        from: started,
        to: idle,
        trigger: Trigger::End(TaskPat::named(task)),
        guard: Some(Expr::bin(BinOp::Le, elapsed.clone(), Expr::time(limit_us))),
        body: vec![],
        emit: None,
    });
    // Any event beyond the deadline reports the violation. Re-attempt
    // starts within the deadline hit neither transition and take the
    // implicit self-transition — preserving the first start timestamp
    // (§4.1.3).
    m.transitions.push(Transition {
        from: started,
        to: idle,
        trigger: Trigger::Any,
        guard: Some(Expr::bin(BinOp::Gt, elapsed, Expr::time(limit_us))),
        body: vec![],
        emit: emit(on_fail, path),
    });
    m
}

/// Figure 7, third machine — with the accumulate-across-restarts
/// deviation documented at module level.
fn lower_collect(
    task: &str,
    dp_task: &str,
    count: u32,
    on_fail: OnFail,
    path: Option<u32>,
) -> StateMachine {
    let mut m = StateMachine::new("", task);
    // The sample counter must survive path restarts (the restart is how
    // more samples get produced).
    m.reset_on_path_restart = false;
    m.add_var("i", VarType::Int, Value::Int(0));
    let counting = m.add_state("Counting");

    m.transitions.push(Transition {
        from: counting,
        to: counting,
        trigger: Trigger::End(TaskPat::named(dp_task)),
        guard: None,
        body: vec![incr("i")],
        emit: None,
    });
    // Too few samples at the consumer's start: fail (counter kept).
    // A start with enough samples takes the implicit self-transition.
    m.transitions.push(Transition {
        from: counting,
        to: counting,
        trigger: Trigger::Start(TaskPat::named(task)),
        guard: Some(Expr::bin(
            BinOp::Lt,
            Expr::var("i"),
            Expr::int(count as i64),
        )),
        body: vec![],
        emit: emit(on_fail, path),
    });
    // Consumption happens at the consumer's *completion*, matching the
    // channel semantics: a power failure between the start check and
    // the commit re-delivers the start, which must still see the data
    // (it is consumed only when the task's effects commit).
    m.transitions.push(Transition {
        from: counting,
        to: counting,
        trigger: Trigger::End(TaskPat::named(task)),
        guard: None,
        body: vec![assign("i", Expr::int(0))],
        emit: None,
    });
    m
}

/// Figure 7, fourth machine — with one refinement over the figure's
/// sketch: the freshness obligation is discharged when the consumer
/// *completes*, not when it starts. A power failure between the
/// consumer's (in-time) start and its commit re-delivers the start
/// event after the charging delay; that re-attempt consumes the data
/// too, so it must still be checked — exactly the scenario of the
/// paper's §5.2, where send's re-attempts after long outages are the
/// violations that matter. Consequently the machine waits in
/// `WaitStartA` across in-time starts and returns to `WaitEndB` on
/// `endTask(A)` (which also clears the `maxAttempt` budget); late
/// starts self-loop in `WaitStartA` while counting attempts, and
/// `endTask(B)` in `WaitStartA` refreshes the timestamp after a path
/// restart re-runs the producer.
fn lower_mitd(
    task: &str,
    dp_task: &str,
    limit_us: u64,
    on_fail: OnFail,
    max_attempt: Option<MaxAttempt>,
    path: Option<u32>,
) -> StateMachine {
    let mut m = StateMachine::new("", task);
    // The attempt counter must survive the very path restarts it
    // causes, or the escalation could never fire.
    m.reset_on_path_restart = false;
    m.add_var("endB", VarType::Time, Value::Time(0));
    let wait_end_b = m.add_state("WaitEndB");
    let wait_start_a = m.add_state("WaitStartA");
    let delay = Expr::bin(BinOp::Sub, Expr::EventTime, Expr::var("endB"));
    let late = Expr::bin(BinOp::Gt, delay, Expr::time(limit_us));

    m.transitions.push(Transition {
        from: wait_end_b,
        to: wait_start_a,
        trigger: Trigger::End(TaskPat::named(dp_task)),
        guard: None,
        body: vec![assign("endB", Expr::EventTime)],
        emit: None,
    });
    // A producer re-run (after a path restart) refreshes the data.
    m.transitions.push(Transition {
        from: wait_start_a,
        to: wait_start_a,
        trigger: Trigger::End(TaskPat::named(dp_task)),
        guard: None,
        body: vec![assign("endB", Expr::EventTime)],
        emit: None,
    });

    match max_attempt {
        None => {
            m.transitions.push(Transition {
                from: wait_start_a,
                to: wait_start_a,
                trigger: Trigger::Start(TaskPat::named(task)),
                guard: Some(late),
                body: vec![],
                emit: emit(on_fail, path),
            });
            m.transitions.push(Transition {
                from: wait_start_a,
                to: wait_end_b,
                trigger: Trigger::End(TaskPat::named(task)),
                guard: None,
                body: vec![],
                emit: None,
            });
        }
        Some(ma) => {
            m.add_var("i", VarType::Int, Value::Int(0));
            let budget_left = Expr::bin(
                BinOp::Lt,
                Expr::bin(BinOp::Add, Expr::var("i"), Expr::int(1)),
                Expr::int(ma.max as i64),
            );
            let budget_spent = Expr::bin(
                BinOp::Ge,
                Expr::bin(BinOp::Add, Expr::var("i"), Expr::int(1)),
                Expr::int(ma.max as i64),
            );
            // Late with budget: count and take the primary action.
            m.transitions.push(Transition {
                from: wait_start_a,
                to: wait_start_a,
                trigger: Trigger::Start(TaskPat::named(task)),
                guard: Some(Expr::and(late.clone(), budget_left)),
                body: vec![incr("i")],
                emit: emit(on_fail, path),
            });
            // Late with the budget spent: escalate.
            m.transitions.push(Transition {
                from: wait_start_a,
                to: wait_start_a,
                trigger: Trigger::Start(TaskPat::named(task)),
                guard: Some(Expr::and(late, budget_spent)),
                body: vec![assign("i", Expr::int(0))],
                emit: emit(ma.on_fail, path),
            });
            // Completion discharges the obligation and the budget.
            m.transitions.push(Transition {
                from: wait_start_a,
                to: wait_end_b,
                trigger: Trigger::End(TaskPat::named(task)),
                guard: None,
                body: vec![assign("i", Expr::int(0))],
                emit: None,
            });
        }
    }
    m
}

/// `period`: consecutive starts must be at most `interval + jitter`
/// apart.
fn lower_period(
    task: &str,
    interval_us: u64,
    jitter_us: u64,
    on_fail: OnFail,
    max_attempt: Option<MaxAttempt>,
    path: Option<u32>,
) -> StateMachine {
    let mut m = StateMachine::new("", task);
    m.reset_on_path_restart = false;
    m.add_var("last", VarType::Time, Value::Time(0));
    let first = m.add_state("First");
    let periodic = m.add_state("Periodic");
    let bound = interval_us.saturating_add(jitter_us);
    let gap = Expr::bin(BinOp::Sub, Expr::EventTime, Expr::var("last"));
    let in_time = Expr::bin(BinOp::Le, gap.clone(), Expr::time(bound));
    let late = Expr::bin(BinOp::Gt, gap, Expr::time(bound));

    m.transitions.push(Transition {
        from: first,
        to: periodic,
        trigger: Trigger::Start(TaskPat::named(task)),
        guard: None,
        body: vec![assign("last", Expr::EventTime)],
        emit: None,
    });

    match max_attempt {
        None => {
            m.transitions.push(Transition {
                from: periodic,
                to: periodic,
                trigger: Trigger::Start(TaskPat::named(task)),
                guard: Some(in_time),
                body: vec![assign("last", Expr::EventTime)],
                emit: None,
            });
            m.transitions.push(Transition {
                from: periodic,
                to: periodic,
                trigger: Trigger::Start(TaskPat::named(task)),
                guard: Some(late),
                body: vec![assign("last", Expr::EventTime)],
                emit: emit(on_fail, path),
            });
        }
        Some(ma) => {
            m.add_var("i", VarType::Int, Value::Int(0));
            let budget_left = Expr::bin(
                BinOp::Lt,
                Expr::bin(BinOp::Add, Expr::var("i"), Expr::int(1)),
                Expr::int(ma.max as i64),
            );
            let budget_spent = Expr::bin(
                BinOp::Ge,
                Expr::bin(BinOp::Add, Expr::var("i"), Expr::int(1)),
                Expr::int(ma.max as i64),
            );
            m.transitions.push(Transition {
                from: periodic,
                to: periodic,
                trigger: Trigger::Start(TaskPat::named(task)),
                guard: Some(in_time),
                body: vec![assign("last", Expr::EventTime), assign("i", Expr::int(0))],
                emit: None,
            });
            m.transitions.push(Transition {
                from: periodic,
                to: periodic,
                trigger: Trigger::Start(TaskPat::named(task)),
                guard: Some(Expr::and(late.clone(), budget_left)),
                body: vec![assign("last", Expr::EventTime), incr("i")],
                emit: emit(on_fail, path),
            });
            m.transitions.push(Transition {
                from: periodic,
                to: periodic,
                trigger: Trigger::Start(TaskPat::named(task)),
                guard: Some(Expr::and(late, budget_spent)),
                body: vec![assign("last", Expr::EventTime), assign("i", Expr::int(0))],
                emit: emit(ma.on_fail, path),
            });
        }
    }
    m
}

/// `dpData` + `Range`: the monitored output must stay in `[lo, hi]`.
fn lower_dp_data(task: &str, lo: f64, hi: f64, on_fail: OnFail, path: Option<u32>) -> StateMachine {
    let mut m = StateMachine::new("", task);
    m.reset_on_path_restart = true;
    let watching = m.add_state("Watching");
    m.transitions.push(Transition {
        from: watching,
        to: watching,
        trigger: Trigger::End(TaskPat::named(task)),
        guard: Some(Expr::or(
            Expr::bin(BinOp::Lt, Expr::DepData, Expr::float(lo)),
            Expr::bin(BinOp::Gt, Expr::DepData, Expr::float(hi)),
        )),
        body: vec![],
        emit: emit(on_fail, path),
    });
    m
}

/// `energy` extension (§4.2.2): minimum capacitor level at task start.
fn lower_energy(task: &str, min_nj: u64, on_fail: OnFail, path: Option<u32>) -> StateMachine {
    let mut m = StateMachine::new("", task);
    m.reset_on_path_restart = true;
    let watching = m.add_state("Watching");
    m.transitions.push(Transition {
        from: watching,
        to: watching,
        trigger: Trigger::Start(TaskPat::named(task)),
        guard: Some(Expr::bin(
            BinOp::Lt,
            Expr::EnergyLevel,
            Expr::int(i64::try_from(min_nj).unwrap_or(i64::MAX)),
        )),
        body: vec![],
        emit: emit(on_fail, path),
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{step, IrEvent, MachineState};
    use crate::expr::EventCtx;
    use artemis_core::app::AppGraphBuilder;
    use artemis_core::event::EventKind;

    fn ctx(t_us: u64) -> EventCtx {
        EventCtx {
            time_us: t_us,
            dep_data: None,
            energy_nj: u64::MAX,
        }
    }

    fn start(task: &str, t_us: u64) -> IrEvent<'_> {
        IrEvent {
            kind: EventKind::StartTask,
            task,
            ctx: ctx(t_us),
        }
    }

    fn end(task: &str, t_us: u64) -> IrEvent<'_> {
        IrEvent {
            kind: EventKind::EndTask,
            task,
            ctx: ctx(t_us),
        }
    }

    fn compile(spec: &str) -> (MonitorSuite, AppGraph) {
        let mut b = AppGraphBuilder::new();
        let body = b.task("bodyTemp");
        let avg = b.task_with_var("calcAvg", "avgTemp");
        let heart = b.task("heartRate");
        let accel = b.task("accel");
        let classify = b.task("classify");
        let mic = b.task("micSense");
        let filter = b.task("filter");
        let send = b.task("send");
        b.path(&[body, avg, heart, send]);
        b.path(&[accel, classify, send]);
        b.path(&[mic, filter, send]);
        let app = b.build().unwrap();
        let set = artemis_spec::compile(spec, &app).unwrap();
        let suite = lower_set(&set, &app).unwrap();
        (suite, app)
    }

    #[test]
    fn figure5_produces_eight_machines() {
        let (suite, _) = compile(artemis_spec::samples::FIGURE5);
        assert_eq!(suite.len(), 8);
        let names: Vec<_> = suite.machines().iter().map(|m| m.name.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("send_MITD")));
        assert!(names.iter().any(|n| n.starts_with("calcAvg_dpData")));
    }

    #[test]
    fn max_tries_allows_max_then_fails() {
        let (suite, _) = compile("accel { maxTries: 3 onFail: skipPath; }");
        let m = &suite.machines()[0];
        assert!(m.reset_on_path_restart);
        let mut s = MachineState::initial(m);
        for attempt in 1..=3 {
            let v = step(m, &mut s, &start("accel", attempt)).unwrap();
            assert!(v.is_none(), "attempt {attempt} must pass");
        }
        let v = step(m, &mut s, &start("accel", 4)).unwrap().unwrap();
        assert_eq!(v.action, OnFail::SkipPath);
        assert_eq!(v.path, Some(2));
    }

    #[test]
    fn max_tries_completion_resets_budget() {
        let (suite, _) = compile("accel { maxTries: 2 onFail: skipPath; }");
        let m = &suite.machines()[0];
        let mut s = MachineState::initial(m);
        step(m, &mut s, &start("accel", 0)).unwrap();
        step(m, &mut s, &start("accel", 1)).unwrap();
        step(m, &mut s, &end("accel", 2)).unwrap();
        // Fresh budget after completion.
        assert!(step(m, &mut s, &start("accel", 3)).unwrap().is_none());
        assert!(step(m, &mut s, &start("accel", 4)).unwrap().is_none());
        assert!(step(m, &mut s, &start("accel", 5)).unwrap().is_some());
    }

    #[test]
    fn max_duration_keeps_first_start_timestamp() {
        let (suite, _) = compile("send { maxDuration: 100ms onFail: skipTask; }");
        let m = &suite.machines()[0];
        let mut s = MachineState::initial(m);
        step(m, &mut s, &start("send", 0)).unwrap();
        // A re-attempt start 60 ms later: implicit self-transition, the
        // latched timestamp must stay 0.
        assert!(step(m, &mut s, &start("send", 60_000)).unwrap().is_none());
        // Completion at 90 ms from the *first* start: in time.
        assert!(step(m, &mut s, &end("send", 90_000)).unwrap().is_none());

        // Next round: completion at 150 ms from first start: violation,
        // even though only 50 ms passed since the second start event.
        step(m, &mut s, &start("send", 200_000)).unwrap();
        step(m, &mut s, &start("send", 300_000)).unwrap();
        let v = step(m, &mut s, &end("send", 301_000)).unwrap().unwrap();
        assert_eq!(v.action, OnFail::SkipTask);
    }

    #[test]
    fn max_duration_fails_on_any_late_event() {
        let (suite, _) = compile("send { maxDuration: 1s onFail: skipTask; }");
        let m = &suite.machines()[0];
        let mut s = MachineState::initial(m);
        step(m, &mut s, &start("send", 0)).unwrap();
        // An unrelated task's event past the deadline reveals the
        // violation (the `anyEvent` trigger of Figure 7).
        let v = step(m, &mut s, &start("accel", 2_000_000))
            .unwrap()
            .unwrap();
        assert_eq!(v.action, OnFail::SkipTask);
        assert_eq!(s.state, m.state_index("Idle").unwrap());
    }

    #[test]
    fn collect_accumulates_across_failures() {
        let (suite, _) = compile("calcAvg { collect: 3 dpTask: bodyTemp onFail: restartPath; }");
        let m = &suite.machines()[0];
        assert!(!m.reset_on_path_restart, "collect must survive restarts");
        let mut s = MachineState::initial(m);
        let mut clock = 0;
        // Two rounds of bodyTemp → calcAvg-start-fails, then the third
        // round has enough.
        for round in 1..=2 {
            step(m, &mut s, &end("bodyTemp", clock)).unwrap();
            clock += 1;
            let v = step(m, &mut s, &start("calcAvg", clock)).unwrap();
            assert!(v.is_some(), "round {round} has too few samples");
            clock += 1;
        }
        step(m, &mut s, &end("bodyTemp", clock)).unwrap();
        let v = step(m, &mut s, &start("calcAvg", clock + 1)).unwrap();
        assert!(v.is_none(), "three samples satisfy collect: 3");
        // A re-attempt start (power failure before commit) must still
        // see the data: consumption only happens at completion.
        let v = step(m, &mut s, &start("calcAvg", clock + 2)).unwrap();
        assert!(v.is_none(), "re-attempt must not be starved");
        // The consumer's completion consumes: the next start fails.
        step(m, &mut s, &end("calcAvg", clock + 3)).unwrap();
        let v = step(m, &mut s, &start("calcAvg", clock + 4)).unwrap();
        assert!(v.is_some());
    }

    #[test]
    fn mitd_without_escalation_fails_on_late_start() {
        let (suite, _) = compile("send { MITD: 5min dpTask: accel onFail: restartPath Path: 2; }");
        let m = &suite.machines()[0];
        let mut s = MachineState::initial(m);
        step(m, &mut s, &end("accel", 0)).unwrap();
        // 4 minutes later: fine.
        assert!(step(m, &mut s, &start("send", 240_000_000))
            .unwrap()
            .is_none());
        step(m, &mut s, &end("accel", 250_000_000)).unwrap();
        // 6 minutes after accel: violation.
        let v = step(m, &mut s, &start("send", 610_000_000))
            .unwrap()
            .unwrap();
        assert_eq!(v.action, OnFail::RestartPath);
        assert_eq!(v.path, Some(2));
    }

    #[test]
    fn mitd_escalates_after_max_attempts() {
        let (suite, _) = compile(
            "send { MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2; }",
        );
        let m = &suite.machines()[0];
        assert!(
            !m.reset_on_path_restart,
            "MITD budget must survive restarts"
        );
        let mut s = MachineState::initial(m);
        let mut t = 0u64;
        let six_min = 360_000_000u64;
        // Two late rounds take the primary action…
        for round in 1..=2 {
            step(m, &mut s, &end("accel", t)).unwrap();
            t += six_min;
            let v = step(m, &mut s, &start("send", t)).unwrap().unwrap();
            assert_eq!(v.action, OnFail::RestartPath, "round {round}");
        }
        // …the third escalates to skipPath.
        step(m, &mut s, &end("accel", t)).unwrap();
        t += six_min;
        let v = step(m, &mut s, &start("send", t)).unwrap().unwrap();
        assert_eq!(v.action, OnFail::SkipPath);
        // And the budget is fresh afterwards.
        step(m, &mut s, &end("accel", t)).unwrap();
        t += six_min;
        let v = step(m, &mut s, &start("send", t)).unwrap().unwrap();
        assert_eq!(v.action, OnFail::RestartPath);
    }

    #[test]
    fn mitd_completion_resets_attempt_budget() {
        let (suite, _) = compile(
            "send { MITD: 1s dpTask: accel onFail: restartPath maxAttempt: 2 onFail: skipPath Path: 2; }",
        );
        let m = &suite.machines()[0];
        let mut s = MachineState::initial(m);
        // One late round…
        step(m, &mut s, &end("accel", 0)).unwrap();
        let v = step(m, &mut s, &start("send", 2_000_000)).unwrap().unwrap();
        assert_eq!(v.action, OnFail::RestartPath);
        // …then an on-time start followed by the consumer *completing*
        // clears the budget (starts alone do not: a power failure could
        // still strand the re-attempt past the bound)…
        step(m, &mut s, &end("accel", 3_000_000)).unwrap();
        assert!(step(m, &mut s, &start("send", 3_500_000))
            .unwrap()
            .is_none());
        step(m, &mut s, &end("send", 3_600_000)).unwrap();
        // …so the next failure is primary again, not the escalation.
        step(m, &mut s, &end("accel", 4_000_000)).unwrap();
        let v = step(m, &mut s, &start("send", 9_000_000)).unwrap().unwrap();
        assert_eq!(v.action, OnFail::RestartPath);
    }

    #[test]
    fn mitd_rechecks_post_failure_reattempts() {
        // The §5.2 scenario: an in-time start followed by a power
        // failure; the re-attempt start after a long outage must STILL
        // be checked (the data is only consumed at completion).
        let (suite, _) = compile("send { MITD: 1s dpTask: accel onFail: restartPath Path: 2; }");
        let m = &suite.machines()[0];
        let mut s = MachineState::initial(m);
        step(m, &mut s, &end("accel", 0)).unwrap();
        assert!(step(m, &mut s, &start("send", 500_000)).unwrap().is_none());
        // Power failure; re-attempt 10 s later: stale.
        let v = step(m, &mut s, &start("send", 10_500_000))
            .unwrap()
            .unwrap();
        assert_eq!(v.action, OnFail::RestartPath);
        // The producer re-runs; the refreshed timestamp is observed
        // even though the machine never left WaitStartA.
        step(m, &mut s, &end("accel", 11_000_000)).unwrap();
        assert!(step(m, &mut s, &start("send", 11_200_000))
            .unwrap()
            .is_none());
    }

    #[test]
    fn period_flags_gaps_beyond_interval_plus_jitter() {
        let (suite, _) = compile("accel { period: 10s jitter: 1s onFail: restartTask; }");
        let m = &suite.machines()[0];
        let mut s = MachineState::initial(m);
        assert!(step(m, &mut s, &start("accel", 0)).unwrap().is_none());
        // 10.5 s gap: inside interval + jitter.
        assert!(step(m, &mut s, &start("accel", 10_500_000))
            .unwrap()
            .is_none());
        // 12 s gap: violation.
        let v = step(m, &mut s, &start("accel", 22_500_000))
            .unwrap()
            .unwrap();
        assert_eq!(v.action, OnFail::RestartTask);
        // The late start still re-bases the period.
        assert!(step(m, &mut s, &start("accel", 32_000_000))
            .unwrap()
            .is_none());
    }

    #[test]
    fn period_escalation_counts_consecutive_failures() {
        let (suite, _) =
            compile("accel { period: 1s onFail: restartTask maxAttempt: 2 onFail: skipPath; }");
        let m = &suite.machines()[0];
        let mut s = MachineState::initial(m);
        step(m, &mut s, &start("accel", 0)).unwrap();
        let v = step(m, &mut s, &start("accel", 10_000_000))
            .unwrap()
            .unwrap();
        assert_eq!(v.action, OnFail::RestartTask);
        let v = step(m, &mut s, &start("accel", 20_000_000))
            .unwrap()
            .unwrap();
        assert_eq!(v.action, OnFail::SkipPath);
    }

    #[test]
    fn dp_data_range_checks_end_events() {
        let (suite, _) =
            compile("calcAvg { dpData: avgTemp Range: [36, 38] onFail: completePath; }");
        let m = &suite.machines()[0];
        let mut s = MachineState::initial(m);
        let mut ev = end("calcAvg", 0);
        ev.ctx.dep_data = Some(37.0);
        assert!(step(m, &mut s, &ev).unwrap().is_none());
        ev.ctx.dep_data = Some(39.5);
        let v = step(m, &mut s, &ev).unwrap().unwrap();
        assert_eq!(v.action, OnFail::CompletePath);
        ev.ctx.dep_data = Some(35.9);
        assert!(step(m, &mut s, &ev).unwrap().is_some());
        // Boundary values are in range (inclusive).
        ev.ctx.dep_data = Some(36.0);
        assert!(step(m, &mut s, &ev).unwrap().is_none());
        ev.ctx.dep_data = Some(38.0);
        assert!(step(m, &mut s, &ev).unwrap().is_none());
    }

    #[test]
    fn energy_property_gates_task_start() {
        let (suite, _) = compile("accel { energy: 300uJ onFail: skipTask; }");
        let m = &suite.machines()[0];
        let mut s = MachineState::initial(m);
        let mut ev = start("accel", 0);
        ev.ctx.energy_nj = 400_000; // 400 µJ: plenty
        assert!(step(m, &mut s, &ev).unwrap().is_none());
        ev.ctx.energy_nj = 200_000; // 200 µJ: too little
        let v = step(m, &mut s, &ev).unwrap().unwrap();
        assert_eq!(v.action, OnFail::SkipTask);
    }

    /// Oracle cross-check: drive the lowered maxTries machine and a
    /// trivially-correct counter implementation with the same random
    /// event stream and compare failure verdicts.
    #[test]
    fn max_tries_matches_oracle_on_random_streams() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let (suite, _) = compile("accel { maxTries: 4 onFail: skipPath; }");
        let m = &suite.machines()[0];
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);

        for _ in 0..200 {
            let mut s = MachineState::initial(m);
            let mut oracle_count = 0u32;
            let mut oracle_started = false;
            for t in 0..50u64 {
                let is_start = rng.random_bool(0.7);
                let task = if rng.random_bool(0.8) {
                    "accel"
                } else {
                    "other"
                };
                let ev = if is_start {
                    start(task, t)
                } else {
                    end(task, t)
                };
                let got = step(m, &mut s, &ev).unwrap().is_some();

                // Oracle semantics.
                let mut expect = false;
                if task == "accel" {
                    if is_start {
                        if !oracle_started {
                            oracle_started = true;
                            oracle_count = 1;
                        } else if oracle_count < 4 {
                            oracle_count += 1;
                        } else {
                            expect = true;
                            oracle_started = false;
                            oracle_count = 0;
                        }
                    } else if oracle_started {
                        oracle_started = false;
                        oracle_count = 0;
                    }
                }
                assert_eq!(got, expect, "divergence at t={t}");
            }
        }
    }
}
