//! Packed FRAM machine layout: per-slot byte widths derived from
//! verifier-known value ranges.
//!
//! The original ("tagged") layout spends a fixed 4-byte little-endian
//! state word plus 9 bytes per variable slot (1 tag byte + 8 payload
//! bytes, [`NV_VALUE_BYTES`]) regardless of what the machine can ever
//! store there. But the documented cost model bills FRAM time/energy
//! *per byte*, and most monitor counters are tiny: a `maxTries: 3`
//! retry counter fits in one byte, a state index over 4 states fits in
//! one byte. This module derives a **packed layout** at compile time:
//!
//! - the state word shrinks to 1/2/4 bytes, sized by the highest state
//!   index any transition can reach;
//! - each `Int` slot shrinks to 1/2/4/8 bytes via an interval analysis
//!   over the machine's bytecode ([`int_bounds`]) — saturating
//!   arithmetic and the coercion rules make the transfer functions
//!   exact enough that common counters collapse to a single byte;
//! - `Bool` slots take 1 byte, `Time`/`Float` slots keep their full
//!   8-byte payload but drop the tag byte (the slot's runtime type is
//!   pinned by the machine's declaration — `coerce` never changes a
//!   slot's variant);
//! - the per-machine done flags pack into a bitmap (see the engine).
//!
//! The layout is **derived data**, recomputed from the (possibly
//! mutated) bytecode in [`crate::compile::CompiledMachine::from_raw`]
//! exactly like access sets, so mutation cannot make it lie. Soundness
//! contract: for every value the verified machine can ever hold in a
//! slot, `decode(encode(v)) == v`. The monitor engine's equivalence
//! suite pins packed ≡ tagged ≡ interpreter under power failures.

use crate::compile::{CompiledTransition, Op};
use crate::expr::{BinOp, Value, VarType};

/// Bytes of one tagged slot image: 1 tag byte + 8 payload bytes.
pub const NV_VALUE_BYTES: usize = 9;
/// Bytes of the tagged layout's state word.
pub const STATE_WORD_BYTES: usize = 4;

/// How one variable slot is encoded in the machine's FRAM block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotEnc {
    /// 1 byte, `0`/`1`.
    Bool,
    /// Little-endian integer of `width` ∈ {1, 2, 4, 8} bytes;
    /// sign-extended on decode when `signed`.
    Int {
        /// Encoded byte width.
        width: u8,
        /// `true` ⇒ sign-extend on decode; `false` ⇒ zero-extend.
        signed: bool,
    },
    /// 8-byte little-endian `u64` microsecond timestamp.
    Time,
    /// 8-byte little-endian IEEE-754 bits.
    Float,
    /// The legacy 9-byte tagged image (tag + payload) — used by the
    /// tagged layout for every slot.
    Tagged,
}

impl SlotEnc {
    /// Encoded width in bytes.
    pub fn width(self) -> usize {
        match self {
            SlotEnc::Bool => 1,
            SlotEnc::Int { width, .. } => width as usize,
            SlotEnc::Time | SlotEnc::Float => 8,
            SlotEnc::Tagged => NV_VALUE_BYTES,
        }
    }

    /// The variable type this encoding stores, or `None` for the
    /// type-carrying tagged image.
    pub fn var_type(self) -> Option<VarType> {
        match self {
            SlotEnc::Bool => Some(VarType::Bool),
            SlotEnc::Int { .. } => Some(VarType::Int),
            SlotEnc::Time => Some(VarType::Time),
            SlotEnc::Float => Some(VarType::Float),
            SlotEnc::Tagged => None,
        }
    }
}

/// One slot's position inside the machine block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlotLayout {
    /// Byte offset from the start of the machine block.
    pub offset: usize,
    /// Encoding (and therefore width).
    pub enc: SlotEnc,
}

/// The FRAM image layout of one machine block: the state word followed
/// by every variable slot, contiguous from offset 0.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MachineLayout {
    /// Bytes of the state field at offset 0 (1, 2 or 4).
    pub state_bytes: usize,
    /// Per-slot offsets and encodings, in slot order.
    pub slots: Vec<SlotLayout>,
    /// Total block length in bytes.
    pub block_len: usize,
}

impl MachineLayout {
    /// The legacy tagged layout: 4-byte state word + 9 tagged bytes per
    /// slot. Bit-identical to the pre-packing engine image.
    pub fn tagged(var_count: usize) -> Self {
        let slots = (0..var_count)
            .map(|i| SlotLayout {
                offset: STATE_WORD_BYTES + i * NV_VALUE_BYTES,
                enc: SlotEnc::Tagged,
            })
            .collect::<Vec<_>>();
        MachineLayout {
            state_bytes: STATE_WORD_BYTES,
            slots,
            block_len: STATE_WORD_BYTES + var_count * NV_VALUE_BYTES,
        }
    }

    /// Derives the packed layout from the machine's compiled parts:
    /// state width from the highest reachable state index, per-slot
    /// `Int` widths from [`int_bounds`], everything else from the
    /// declared type (the slot variant invariant: `coerce` preserves
    /// the slot's runtime type, so the declaration pins the encoding).
    pub fn packed(
        var_inits: &[Value],
        code: &[Op],
        lits: &[Value],
        transitions: &[CompiledTransition],
        initial_state: u32,
    ) -> Self {
        let max_state = transitions
            .iter()
            .map(|t| t.to)
            .chain(core::iter::once(initial_state))
            .max()
            .unwrap_or(0);
        let state_bytes = uint_width(max_state as u64);
        let bounds = int_bounds(var_inits, code, lits);
        let mut slots = Vec::with_capacity(var_inits.len());
        let mut off = state_bytes;
        for (i, init) in var_inits.iter().enumerate() {
            let enc = match init.ty() {
                VarType::Bool => SlotEnc::Bool,
                VarType::Time => SlotEnc::Time,
                VarType::Float => SlotEnc::Float,
                VarType::Int => {
                    let (lo, hi) = bounds[i];
                    int_enc(lo, hi)
                }
            };
            slots.push(SlotLayout { offset: off, enc });
            off += enc.width();
        }
        MachineLayout {
            state_bytes,
            slots,
            block_len: off,
        }
    }

    /// Number of variable slots.
    pub fn var_count(&self) -> usize {
        self.slots.len()
    }

    /// Byte length of the block prefix covering the state word and
    /// slots `0..=max_slot` — the span the sparse delta path loads.
    pub fn span(&self, max_slot: Option<u16>) -> usize {
        match max_slot {
            None => self.state_bytes,
            Some(s) => {
                let s = (s as usize).min(self.slots.len().saturating_sub(1));
                self.slots
                    .get(s)
                    .map(|sl| sl.offset + sl.enc.width())
                    .unwrap_or(self.state_bytes)
            }
        }
    }

    /// Encodes `(state, vars)` into `out` (resized to `block_len`).
    /// Values whose variant disagrees with the slot encoding are
    /// encoded as the slot type's default — unreachable for verified
    /// machines (the engine rejects type-mismatched suites at install).
    pub fn encode(&self, state: u32, vars: &[Value], out: &mut Vec<u8>) {
        out.clear();
        out.resize(self.block_len, 0);
        out[..self.state_bytes].copy_from_slice(&state.to_le_bytes()[..self.state_bytes]);
        for (slot, v) in self.slots.iter().zip(vars) {
            encode_slot(
                slot.enc,
                v,
                &mut out[slot.offset..slot.offset + slot.enc.width()],
            );
        }
    }

    /// Decodes a full block image. `bytes` must be at least
    /// `block_len` long; `vars` is filled to `var_count`.
    pub fn decode(&self, bytes: &[u8], state: &mut u32, vars: &mut Vec<Value>) {
        *state = self.decode_state(bytes);
        vars.clear();
        for slot in &self.slots {
            vars.push(decode_slot(
                slot.enc,
                &bytes[slot.offset..slot.offset + slot.enc.width()],
            ));
        }
    }

    /// Decodes only the state field from a (possibly truncated) image.
    pub fn decode_state(&self, bytes: &[u8]) -> u32 {
        let mut w = [0u8; 4];
        w[..self.state_bytes].copy_from_slice(&bytes[..self.state_bytes]);
        u32::from_le_bytes(w)
    }

    /// Decodes the block prefix covering slots `0..covered`, pushing
    /// one value per covered slot (the delta path's partial load).
    pub fn decode_prefix(
        &self,
        bytes: &[u8],
        covered: usize,
        state: &mut u32,
        vars: &mut Vec<Value>,
    ) {
        *state = self.decode_state(bytes);
        vars.clear();
        for slot in self.slots.iter().take(covered) {
            vars.push(decode_slot(
                slot.enc,
                &bytes[slot.offset..slot.offset + slot.enc.width()],
            ));
        }
    }

    /// Encodes the block prefix covering the state word and slots
    /// `0..covered` into `out` (resized to the covering span). Values
    /// at `covered..` in `vars` are ignored — the delta path's partial
    /// image, byte-exact against the same prefix of a full `encode`.
    pub fn encode_prefix(&self, state: u32, vars: &[Value], covered: usize, out: &mut Vec<u8>) {
        let span = self.span(covered.checked_sub(1).map(|s| s as u16));
        out.clear();
        out.resize(span, 0);
        out[..self.state_bytes].copy_from_slice(&state.to_le_bytes()[..self.state_bytes]);
        for (slot, v) in self.slots.iter().take(covered).zip(vars) {
            encode_slot(
                slot.enc,
                v,
                &mut out[slot.offset..slot.offset + slot.enc.width()],
            );
        }
    }

    /// Encodes the state field alone (the first `state_bytes` bytes).
    pub fn encode_state(&self, state: u32) -> Vec<u8> {
        state.to_le_bytes()[..self.state_bytes].to_vec()
    }

    /// Encodes one slot's image into the front of `buf`, returning the
    /// encoded width — the engine's allocation-free change detector.
    pub fn encode_slot_into(
        &self,
        slot: usize,
        v: &Value,
        buf: &mut [u8; NV_VALUE_BYTES],
    ) -> usize {
        let enc = self.slots[slot].enc;
        let w = enc.width();
        encode_slot(enc, v, &mut buf[..w]);
        w
    }

    /// Encodes one slot's image alone.
    pub fn encode_slot(&self, slot: usize, v: &Value) -> Vec<u8> {
        let enc = self.slots[slot].enc;
        let mut buf = vec![0u8; enc.width()];
        encode_slot(enc, v, &mut buf);
        buf
    }
}

/// Smallest of {1, 2, 4} covering an unsigned value (state indices).
fn uint_width(v: u64) -> usize {
    if v <= u8::MAX as u64 {
        1
    } else if v <= u16::MAX as u64 {
        2
    } else {
        4
    }
}

/// Picks the narrowest integer encoding covering `[lo, hi]`.
fn int_enc(lo: i64, hi: i64) -> SlotEnc {
    let fits = |l: i64, h: i64| lo >= l && hi <= h;
    if lo >= 0 {
        // Zero-extended unsigned widths.
        if hi <= u8::MAX as i64 {
            SlotEnc::Int {
                width: 1,
                signed: false,
            }
        } else if hi <= u16::MAX as i64 {
            SlotEnc::Int {
                width: 2,
                signed: false,
            }
        } else if hi <= u32::MAX as i64 {
            SlotEnc::Int {
                width: 4,
                signed: false,
            }
        } else {
            SlotEnc::Int {
                width: 8,
                signed: true,
            }
        }
    } else if fits(i8::MIN as i64, i8::MAX as i64) {
        SlotEnc::Int {
            width: 1,
            signed: true,
        }
    } else if fits(i16::MIN as i64, i16::MAX as i64) {
        SlotEnc::Int {
            width: 2,
            signed: true,
        }
    } else if fits(i32::MIN as i64, i32::MAX as i64) {
        SlotEnc::Int {
            width: 4,
            signed: true,
        }
    } else {
        SlotEnc::Int {
            width: 8,
            signed: true,
        }
    }
}

fn encode_slot(enc: SlotEnc, v: &Value, out: &mut [u8]) {
    match enc {
        SlotEnc::Bool => out[0] = matches!(v, Value::Bool(true)) as u8,
        SlotEnc::Int { width, .. } => {
            let i = match v {
                Value::Int(i) => *i,
                _ => 0,
            };
            out.copy_from_slice(&i.to_le_bytes()[..width as usize]);
        }
        SlotEnc::Time => {
            let t = match v {
                Value::Time(t) => *t,
                _ => 0,
            };
            out.copy_from_slice(&t.to_le_bytes());
        }
        SlotEnc::Float => {
            let f = match v {
                Value::Float(f) => *f,
                _ => 0.0,
            };
            out.copy_from_slice(&f.to_bits().to_le_bytes());
        }
        SlotEnc::Tagged => {
            let mut img = [0u8; NV_VALUE_BYTES];
            tagged_store(v, &mut img);
            out.copy_from_slice(&img);
        }
    }
}

fn decode_slot(enc: SlotEnc, bytes: &[u8]) -> Value {
    match enc {
        SlotEnc::Bool => Value::Bool(bytes[0] != 0),
        SlotEnc::Int { width, signed } => {
            let w = width as usize;
            let mut b = [0u8; 8];
            b[..w].copy_from_slice(&bytes[..w]);
            if signed && w < 8 && bytes[w - 1] & 0x80 != 0 {
                for byte in b.iter_mut().skip(w) {
                    *byte = 0xFF;
                }
            }
            Value::Int(i64::from_le_bytes(b))
        }
        SlotEnc::Time => Value::Time(u64::from_le_bytes(bytes[..8].try_into().unwrap())),
        SlotEnc::Float => Value::Float(f64::from_bits(u64::from_le_bytes(
            bytes[..8].try_into().unwrap(),
        ))),
        SlotEnc::Tagged => tagged_load(bytes),
    }
}

/// The tagged 9-byte image, byte-identical to the engine's historical
/// `NvValue` encoding (tag 0..=3, little-endian payload).
fn tagged_store(v: &Value, out: &mut [u8; NV_VALUE_BYTES]) {
    match v {
        Value::Int(i) => {
            out[0] = 0;
            out[1..9].copy_from_slice(&i.to_le_bytes());
        }
        Value::Bool(b) => {
            out[0] = 1;
            out[1..9].copy_from_slice(&(*b as u64).to_le_bytes());
        }
        Value::Time(t) => {
            out[0] = 2;
            out[1..9].copy_from_slice(&t.to_le_bytes());
        }
        Value::Float(f) => {
            out[0] = 3;
            out[1..9].copy_from_slice(&f.to_bits().to_le_bytes());
        }
    }
}

fn tagged_load(bytes: &[u8]) -> Value {
    let payload = u64::from_le_bytes(bytes[1..9].try_into().unwrap());
    match bytes[0] {
        0 => Value::Int(payload as i64),
        1 => Value::Bool(payload != 0),
        2 => Value::Time(payload),
        _ => Value::Float(f64::from_bits(payload)),
    }
}

// ---------------------------------------------------------------------------
// Interval analysis
// ---------------------------------------------------------------------------

/// Abstract value for the interval analysis. Only `Int` carries a
/// range; the other variants exist so coercions (`Int ↔ Time`,
/// `Int → Float`) transfer soundly.
#[derive(Clone, Copy, PartialEq, Debug)]
enum AbsVal {
    /// Unreachable / uninitialised.
    Bot,
    /// An integer in `[lo, hi]`.
    Int(i64, i64),
    /// Any timestamp.
    Time,
    /// Any float.
    Float,
    /// Any bool.
    Bool,
    /// Unknown type.
    Top,
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        use AbsVal::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (Int(a, b), Int(c, d)) => Int(a.min(c), b.max(d)),
            (Time, Time) => Time,
            (Float, Float) => Float,
            (Bool, Bool) => Bool,
            _ => Top,
        }
    }

    fn of(v: &Value) -> AbsVal {
        match v {
            Value::Int(i) => AbsVal::Int(*i, *i),
            Value::Bool(_) => AbsVal::Bool,
            Value::Time(_) => AbsVal::Time,
            Value::Float(_) => AbsVal::Float,
        }
    }
}

const FULL: (i64, i64) = (i64::MIN, i64::MAX);
/// Outer fixpoint pass budget before widening every unstable `Int`
/// slot to the full `i64` range (a terminal state, so the analysis
/// always converges).
const MAX_PASSES: usize = 64;

/// Sound per-slot integer bounds: for each `Int`-typed slot, an
/// interval containing every value the machine can ever store there.
/// Non-`Int` slots get the full range (their encoding ignores it).
///
/// The transfer functions mirror [`crate::expr::apply`] and
/// [`crate::exec::coerce`] exactly:
/// - `Int + Int` / `Int - Int` are **saturating**, so interval
///   endpoints saturate too (no wrap to reason about);
/// - comparisons yield `Bool`, which a `StoreVar` into an `Int` slot
///   cannot change (`coerce` type-mismatches leave the slot intact);
/// - `Time → Int` coercion is `try_from` with an `i64::MAX` fallback,
///   hence `[0, i64::MAX]`; `LoadEnergy` is a saturating cast of a
///   non-negative energy, hence `[0, i64::MAX]`.
///
/// Bytecode is scanned in order over the whole code array (a superset
/// of all reachable guard/body ranges — sound, and exactly what keeps
/// mutated raw machines honest), with register state accumulated by
/// join across the pass: the compiler only emits forward jumps, so any
/// execution's register value at an instruction is covered by some
/// in-order prefix's accumulated state.
pub fn int_bounds(var_inits: &[Value], code: &[Op], lits: &[Value]) -> Vec<(i64, i64)> {
    let n = var_inits.len();
    let mut slots: Vec<AbsVal> = var_inits.iter().map(AbsVal::of).collect();

    // The in-order accumulate-join below is only sound for forward
    // control flow (the verifier's strictly-forward jump rule, which
    // every installed machine has passed). Mutated raw code with a
    // backward jump gets the trivially sound answer instead.
    let backward = code.iter().enumerate().any(|(i, op)| match *op {
        Op::Jump { target }
        | Op::JumpIfFalse { target, .. }
        | Op::JumpIfTrue { target, .. }
        | Op::CmpBranch { target, .. }
        | Op::LoadCmpBranch { target, .. } => (target as usize) <= i,
        _ => false,
    });
    if backward {
        return vec![FULL; n];
    }

    let max_reg = code
        .iter()
        .map(|op| match *op {
            Op::Const { dst, .. }
            | Op::LoadVar { dst, .. }
            | Op::LoadEventTime { dst }
            | Op::LoadDepData { dst }
            | Op::LoadEnergy { dst } => dst as usize,
            Op::Bin { dst, a, b, .. } | Op::CmpBranch { dst, a, b, .. } => {
                (dst as usize).max(a as usize).max(b as usize)
            }
            Op::Not { dst, src } => (dst as usize).max(src as usize),
            Op::AssertBool { src } | Op::JumpIfFalse { src, .. } | Op::JumpIfTrue { src, .. } => {
                src as usize
            }
            Op::Jump { .. } | Op::ConstStore { .. } => 0,
            Op::StoreVar { src, .. } => src as usize,
            Op::LoadCmpBranch { dst, .. } => dst as usize,
        })
        .max()
        .map(|m| m + 1)
        .unwrap_or(1);

    // Outer fixpoint with per-slot widening: after `MAX_PASSES` passes
    // without convergence, the slots still moving are widened to the
    // full range (terminal), the budget resets, and the remaining
    // (smaller) system continues. Stable slots keep their tight
    // intervals — one diverging counter cannot cost its neighbours
    // their packing. The hard cap bounds total work even for adversarial
    // mutated bytecode.
    let mut pass = 0usize;
    let mut total = 0usize;
    let hard_cap = MAX_PASSES * (n + 2);
    loop {
        let mut changed = false;
        let mut changed_slots = vec![false; n];
        let store = |slots: &mut Vec<AbsVal>,
                     changed_slots: &mut Vec<bool>,
                     slot: usize,
                     v: AbsVal,
                     changed: &mut bool| {
            if slot >= n {
                return;
            }
            // StoreVar runs through `coerce`: the stored value lands in
            // the slot only when it coerces to the slot's type. For an
            // Int slot that means Int stays as-is, Time maps into
            // [0, i64::MAX] (try_from floor 0 / fallback MAX), anything
            // else leaves the slot unchanged. Non-Int slots keep their
            // type by the same rule.
            let cur = slots[slot];
            let incoming = match (v, cur) {
                (AbsVal::Int(lo, hi), AbsVal::Int(..)) => AbsVal::Int(lo, hi),
                (AbsVal::Time, AbsVal::Int(..)) => AbsVal::Int(0, i64::MAX),
                (AbsVal::Top, AbsVal::Int(..)) => AbsVal::Int(FULL.0, FULL.1),
                (AbsVal::Bot, _) => return,
                // Same-type (or unknown) stores into non-Int slots keep
                // the slot's abstract type.
                _ => cur,
            };
            let joined = cur.join(incoming);
            if joined != cur {
                slots[slot] = joined;
                changed_slots[slot] = true;
                *changed = true;
            }
        };

        let mut regs = vec![AbsVal::Bot; max_reg];
        for op in code {
            match *op {
                Op::Const { dst, lit } => {
                    regs[dst as usize] = lits
                        .get(lit as usize)
                        .map(AbsVal::of)
                        .unwrap_or(AbsVal::Top);
                }
                Op::LoadVar { dst, slot } => {
                    regs[dst as usize] = if (slot as usize) < n {
                        slots[slot as usize]
                    } else {
                        AbsVal::Top
                    };
                }
                Op::LoadEventTime { dst } => regs[dst as usize] = AbsVal::Time,
                Op::LoadDepData { dst } => regs[dst as usize] = AbsVal::Float,
                Op::LoadEnergy { dst } => regs[dst as usize] = AbsVal::Int(0, i64::MAX),
                Op::Bin { op, dst, a, b } => {
                    let (a, b) = (regs[a as usize], regs[b as usize]);
                    regs[dst as usize] = abs_bin(op, a, b);
                }
                Op::Not { dst, .. } => regs[dst as usize] = AbsVal::Bool,
                Op::AssertBool { .. } | Op::Jump { .. } => {}
                Op::JumpIfFalse { .. } | Op::JumpIfTrue { .. } => {}
                Op::StoreVar { slot, src } => {
                    let v = regs[src as usize];
                    store(
                        &mut slots,
                        &mut changed_slots,
                        slot as usize,
                        v,
                        &mut changed,
                    );
                }
                // The fused branches survive only when their result
                // reads as a bool, so `dst` is `Bool` past them — same
                // reasoning as `Not`.
                Op::CmpBranch { dst, .. } | Op::LoadCmpBranch { dst, .. } => {
                    regs[dst as usize] = AbsVal::Bool
                }
                Op::ConstStore { slot, lit } => {
                    let v = lits
                        .get(lit as usize)
                        .map(AbsVal::of)
                        .unwrap_or(AbsVal::Top);
                    store(
                        &mut slots,
                        &mut changed_slots,
                        slot as usize,
                        v,
                        &mut changed,
                    );
                }
            }
        }

        if !changed {
            break;
        }
        pass += 1;
        total += 1;
        if pass >= MAX_PASSES || total >= hard_cap {
            for (s, &moved) in slots.iter_mut().zip(&changed_slots) {
                if moved || total >= hard_cap {
                    *s = match s {
                        AbsVal::Int(..) => AbsVal::Int(FULL.0, FULL.1),
                        _ => AbsVal::Top,
                    };
                }
            }
            if total >= hard_cap {
                break;
            }
            pass = 0;
        }
    }

    slots
        .iter()
        .map(|s| match s {
            AbsVal::Int(lo, hi) => (*lo, *hi),
            _ => FULL,
        })
        .collect()
}

/// Abstract transfer of one binary operator, mirroring
/// [`crate::expr::apply`]: only `Int op Int` with saturating `Add`/
/// `Sub` yields an `Int`; comparisons yield `Bool`; mixed `Int`/`Float`
/// promotes to `Float`; `Time` arithmetic stays `Time`; everything
/// else that `apply` would reject is `Top` (the store filter discards
/// it — an `apply` error aborts the body without storing).
fn abs_bin(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
    use AbsVal::*;
    match (op, a, b) {
        (_, Bot, _) | (_, _, Bot) => Bot,
        (BinOp::Add, Int(al, ah), Int(bl, bh)) => Int(al.saturating_add(bl), ah.saturating_add(bh)),
        (BinOp::Sub, Int(al, ah), Int(bl, bh)) => Int(al.saturating_sub(bh), ah.saturating_sub(bl)),
        (
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge,
            Int(..) | Time | Float | Bool,
            _,
        ) => Bool,
        (BinOp::And | BinOp::Or, _, _) => Bool,
        (BinOp::Add | BinOp::Sub, Time, Time) => Time,
        (BinOp::Add | BinOp::Sub, Float, Float) => Float,
        (BinOp::Add | BinOp::Sub, Int(..), Float) | (BinOp::Add | BinOp::Sub, Float, Int(..)) => {
            Float
        }
        // `Int ± Time` / `Time ± Int` and other mixes error in
        // `apply`; `Top` operands could be anything.
        _ => Top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn tagged_layout_matches_legacy_geometry() {
        let l = MachineLayout::tagged(3);
        assert_eq!(l.state_bytes, 4);
        assert_eq!(l.block_len, 4 + 3 * 9);
        assert_eq!(l.slots[2].offset, 4 + 2 * 9);
        assert_eq!(l.span(Some(1)), 4 + 2 * 9);
        assert_eq!(l.span(None), 4);
    }

    #[test]
    fn encode_decode_roundtrip_all_encodings() {
        for (enc, vals) in [
            (SlotEnc::Bool, vec![Value::Bool(true), Value::Bool(false)]),
            (
                SlotEnc::Int {
                    width: 1,
                    signed: false,
                },
                vec![int(0), int(255)],
            ),
            (
                SlotEnc::Int {
                    width: 1,
                    signed: true,
                },
                vec![int(-128), int(127)],
            ),
            (
                SlotEnc::Int {
                    width: 2,
                    signed: true,
                },
                vec![int(-32768), int(32767)],
            ),
            (
                SlotEnc::Int {
                    width: 4,
                    signed: false,
                },
                vec![int(0), int(u32::MAX as i64)],
            ),
            (
                SlotEnc::Int {
                    width: 8,
                    signed: true,
                },
                vec![int(i64::MIN), int(i64::MAX)],
            ),
            (SlotEnc::Time, vec![Value::Time(0), Value::Time(u64::MAX)]),
            (
                SlotEnc::Float,
                vec![Value::Float(-1.5), Value::Float(f64::MAX)],
            ),
            (
                SlotEnc::Tagged,
                vec![
                    int(-7),
                    Value::Bool(true),
                    Value::Time(9),
                    Value::Float(2.5),
                ],
            ),
        ] {
            for v in vals {
                let mut buf = vec![0u8; enc.width()];
                encode_slot(enc, &v, &mut buf);
                assert_eq!(decode_slot(enc, &buf), v, "{enc:?} {v:?}");
            }
        }
    }

    #[test]
    fn int_enc_picks_tight_widths() {
        assert_eq!(
            int_enc(0, 200),
            SlotEnc::Int {
                width: 1,
                signed: false
            }
        );
        assert_eq!(
            int_enc(-1, 100),
            SlotEnc::Int {
                width: 1,
                signed: true
            }
        );
        assert_eq!(
            int_enc(0, 60_000),
            SlotEnc::Int {
                width: 2,
                signed: false
            }
        );
        assert_eq!(
            int_enc(-40_000, 10),
            SlotEnc::Int {
                width: 4,
                signed: true
            }
        );
        assert_eq!(
            int_enc(0, i64::MAX),
            SlotEnc::Int {
                width: 8,
                signed: true
            }
        );
    }

    #[test]
    fn bounded_counter_narrows_to_one_byte() {
        // tries := tries + 1, guarded by tries < 3 — but the analysis
        // is guard-insensitive, so simulate the saturating fixpoint:
        // with no guard the interval keeps growing and must widen to
        // full range. With a bounded literal store (tries := 0) and an
        // add of a constant the widening path is exercised; the tight
        // case is a pure reset/compare machine.
        let code = vec![
            Op::Const { dst: 0, lit: 0 },
            Op::StoreVar { slot: 0, src: 0 },
        ];
        let b = int_bounds(&[int(0)], &code, &[int(3)]);
        assert_eq!(b[0], (0, 3));
    }

    #[test]
    fn unbounded_increment_widens_to_full_range() {
        let code = vec![
            Op::LoadVar { dst: 0, slot: 0 },
            Op::Const { dst: 1, lit: 0 },
            Op::Bin {
                op: BinOp::Add,
                dst: 0,
                a: 0,
                b: 1,
            },
            Op::StoreVar { slot: 0, src: 0 },
        ];
        let b = int_bounds(&[int(0)], &code, &[int(1)]);
        assert_eq!(b[0], (i64::MIN, i64::MAX));
    }

    #[test]
    fn packed_layout_shrinks_state_and_counters() {
        let code = vec![
            Op::Const { dst: 0, lit: 0 },
            Op::StoreVar { slot: 0, src: 0 },
        ];
        let transitions = vec![CompiledTransition {
            from: 0,
            to: 1,
            guard: None,
            body: 0..2,
            emit: None,
        }];
        let inits = [
            int(0),
            Value::Bool(false),
            Value::Time(0),
            Value::Float(0.0),
        ];
        let l = MachineLayout::packed(&inits, &code, &[int(5)], &transitions, 0);
        assert_eq!(l.state_bytes, 1);
        assert_eq!(
            l.slots[0].enc,
            SlotEnc::Int {
                width: 1,
                signed: false
            }
        );
        assert_eq!(l.slots[1].enc, SlotEnc::Bool);
        assert_eq!(l.slots[2].enc, SlotEnc::Time);
        assert_eq!(l.slots[3].enc, SlotEnc::Float);
        // 1 (state) + 1 + 1 + 8 + 8
        assert_eq!(l.block_len, 19);

        let vars = vec![
            int(5),
            Value::Bool(true),
            Value::Time(77),
            Value::Float(1.25),
        ];
        let mut img = Vec::new();
        l.encode(1, &vars, &mut img);
        assert_eq!(img.len(), l.block_len);
        let (mut state, mut out) = (0u32, Vec::new());
        l.decode(&img, &mut state, &mut out);
        assert_eq!(state, 1);
        assert_eq!(out, vars);
    }

    #[test]
    fn tagged_encode_matches_legacy_nv_value_images() {
        let l = MachineLayout::tagged(1);
        let mut img = Vec::new();
        l.encode(7, &[int(-2)], &mut img);
        assert_eq!(&img[..4], &7u32.to_le_bytes());
        assert_eq!(img[4], 0); // Int tag
        assert_eq!(&img[5..13], &(-2i64).to_le_bytes());
    }

    #[test]
    fn time_to_int_store_transfers_to_nonnegative_range() {
        let code = vec![
            Op::LoadEventTime { dst: 0 },
            Op::StoreVar { slot: 0, src: 0 },
        ];
        let b = int_bounds(&[int(0)], &code, &[]);
        assert_eq!(b[0], (0, i64::MAX));
    }

    #[test]
    fn analysis_always_terminates_with_sound_widening() {
        // Mutual growth between two slots: a := b + 1; b := a + 1.
        let code = vec![
            Op::LoadVar { dst: 0, slot: 1 },
            Op::Const { dst: 1, lit: 0 },
            Op::Bin {
                op: BinOp::Add,
                dst: 0,
                a: 0,
                b: 1,
            },
            Op::StoreVar { slot: 0, src: 0 },
            Op::LoadVar { dst: 0, slot: 0 },
            Op::Bin {
                op: BinOp::Add,
                dst: 0,
                a: 0,
                b: 1,
            },
            Op::StoreVar { slot: 1, src: 0 },
        ];
        let b = int_bounds(&[int(0), int(0)], &code, &[int(1)]);
        assert_eq!(b[0], (i64::MIN, i64::MAX));
        assert_eq!(b[1], (i64::MIN, i64::MAX));
    }
}
