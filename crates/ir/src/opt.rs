//! Bytecode optimizer pipeline.
//!
//! Runs between codegen ([`crate::compile`]) and the install-time
//! verifier ([`crate::analysis::verify_machine`]) — deliberately in
//! that order: the verifier checks exactly the instruction stream the
//! engine will execute, so no optimizer bug can smuggle an unverified
//! program past the gate. Every pass is *verifier-monotone*: it only
//! rewrites code into shapes the verifier types at least as precisely
//! (a folded `Const` where a `Bin` stood, a fused branch whose result
//! register is provably `Bool` on every surviving path), which is what
//! the "optimizer output always verifies" fuzzer population pins.
//!
//! Passes, applied per guard/body range to fixpoint:
//!
//! 1. **Jump threading** — branches that land on an unconditional
//!    `Jump` retarget to its destination (forward-only, so the
//!    verifier's strictly-forward jump rule is preserved).
//! 2. **Constant folding** — `Const`-fed `Bin`/`Not` results become
//!    pool literals; folding is skipped when `apply` would error, so
//!    the error surface is unchanged. The ISA has no register-move, so
//!    classic copy propagation degenerates to this literal propagation.
//! 3. **Dead code elimination** — unreachable instructions,
//!    never-erroring pure loads whose destination is dead, provably
//!    redundant `AssertBool`s (source written by a bool-producing
//!    instruction on the same straight line), self-fall-through
//!    `Jump { target: pc + 1 }`, and straight-line dead stores whose
//!    coercion provably cannot error.
//! 4. **Fusion** — the superinstructions [`Op::CmpBranch`]
//!    (compare + conditional jump), [`Op::LoadCmpBranch`] (slot load +
//!    literal compare + jump — the dominant `var cmp lit` guard shape;
//!    unconditional guard tails fuse with a fall-through target), and
//!    [`Op::ConstStore`] (literal store). Only comparison operators
//!    are fused, and a branch-polarity flag replaces operator negation
//!    so float comparisons stay NaN-exact.
//! 5. **Register compaction** — surviving registers renumber densely.
//!    Register 0 (the guard-result contract with the engine) is the
//!    smallest index, so it always maps to itself.
//!
//! The optimized ranges are reassembled through
//! [`CompiledMachine::from_raw`], which recomputes the access sets,
//! packed layout, and static step costs from the new code — derived
//! data can never go stale.

use core::ops::Range;

use crate::compile::{CompiledMachine, Op, RawMachine};
use crate::expr::{apply, BinOp, Value, VarType};

/// How hard [`CompiledMachine::compile`] works on the bytecode.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OptLevel {
    /// Straight-from-lowering bytecode. Kept as the differential
    /// oracle for the optimizer, exactly as `ExecMode::Interpreter` is
    /// for the compiler.
    None,
    /// The full pipeline documented in [`crate::opt`].
    #[default]
    Full,
}

impl OptLevel {
    /// Reads the `ARTEMIS_OPT_LEVEL` environment knob (`none` /
    /// `full`, case-insensitive; anything else — including unset —
    /// resolves to the default). Used by the equivalence suite and the
    /// bench drivers so CI can force the unoptimized oracle.
    pub fn from_env() -> OptLevel {
        match std::env::var("ARTEMIS_OPT_LEVEL") {
            Ok(v) if v.eq_ignore_ascii_case("none") => OptLevel::None,
            _ => OptLevel::default(),
        }
    }
}

/// Optimizes every guard/body range of a compiled machine and
/// reassembles it via [`CompiledMachine::from_raw`] (recomputing
/// access sets, layout, and step costs). Semantics-preserving for any
/// machine the verifier accepts; a machine with backward or
/// out-of-range jump targets is returned unchanged.
pub fn optimize_machine(m: &CompiledMachine) -> CompiledMachine {
    let raw = m.to_raw();
    let var_tys: Vec<VarType> = raw.var_inits.iter().map(|v| v.ty()).collect();
    let mut lits = raw.lits.clone();

    // Extract every range up front; bail out wholesale on shapes the
    // verifier would reject (the ranges keep absolute targets there,
    // so they cannot be relocated).
    let mut pieces: Vec<(Option<Vec<Op>>, Vec<Op>)> = Vec::with_capacity(raw.transitions.len());
    for t in &raw.transitions {
        let guard = match &t.guard {
            None => None,
            Some(g) => match extract(&raw.code, g) {
                Some(ops) => Some(ops),
                None => return m.clone(),
            },
        };
        let Some(body) = extract(&raw.code, &t.body) else {
            return m.clone();
        };
        pieces.push((guard, body));
    }

    let mut code: Vec<Op> = Vec::with_capacity(raw.code.len());
    let mut transitions = raw.transitions.clone();
    for (t, (guard, body)) in transitions.iter_mut().zip(pieces) {
        t.guard =
            guard.map(|ops| append_range(&mut code, optimize_ops(ops, &mut lits, &var_tys, true)));
        t.body = append_range(&mut code, optimize_ops(body, &mut lits, &var_tys, false));
    }

    let max_regs = code
        .iter()
        .map(|op| {
            let (reads, writes) = reg_uses(op);
            reads
                .iter()
                .chain(writes.iter())
                .map(|&r| r as usize + 1)
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0);

    CompiledMachine::from_raw(RawMachine {
        code,
        lits,
        transitions,
        dispatch: raw.dispatch,
        wildcard: raw.wildcard,
        max_regs,
        initial_state: raw.initial_state,
        var_count: raw.var_count,
        var_inits: raw.var_inits,
    })
}

/// Appends a locally-targeted range to the machine's code stream,
/// rebasing targets to absolute indices.
fn append_range(code: &mut Vec<Op>, mut ops: Vec<Op>) -> Range<u32> {
    let start = code.len() as u32;
    for op in &mut ops {
        if let Some(t) = target_mut(op) {
            *t += start;
        }
    }
    code.extend(ops);
    start..code.len() as u32
}

/// Runs the pass pipeline on one range (local targets, exit = `len`).
fn optimize_ops(
    mut ops: Vec<Op>,
    lits: &mut Vec<Value>,
    var_tys: &[VarType],
    is_guard: bool,
) -> Vec<Op> {
    for _ in 0..8 {
        let mut changed = thread_jumps(&mut ops);
        changed |= fold_constants(&mut ops, lits);
        changed |= dce(&mut ops, lits, var_tys, is_guard);
        changed |= fuse(&mut ops, lits, is_guard);
        if !changed {
            break;
        }
    }
    compact_registers(&mut ops);
    ops
}

/// Clones a range out of the code stream with targets rebased to local
/// indices (exit = range length). Returns `None` when any target is
/// backward or outside the range — shapes the verifier rejects.
fn extract(code: &[Op], range: &Range<u32>) -> Option<Vec<Op>> {
    let start = range.start as usize;
    let end = range.end as usize;
    if start > end || end > code.len() {
        return None;
    }
    let mut ops = code[start..end].to_vec();
    for (i, op) in ops.iter_mut().enumerate() {
        if let Some(t) = target_mut(op) {
            let abs = *t as usize;
            if abs <= start + i || abs > end {
                return None;
            }
            *t = (abs - start) as u32;
        }
    }
    Some(ops)
}

/// The branch target of an instruction, if it has one.
fn target_of(op: &Op) -> Option<u32> {
    match op {
        Op::Jump { target }
        | Op::JumpIfFalse { target, .. }
        | Op::JumpIfTrue { target, .. }
        | Op::CmpBranch { target, .. }
        | Op::LoadCmpBranch { target, .. } => Some(*target),
        _ => None,
    }
}

/// Mutable access to an instruction's branch target.
fn target_mut(op: &mut Op) -> Option<&mut u32> {
    match op {
        Op::Jump { target }
        | Op::JumpIfFalse { target, .. }
        | Op::JumpIfTrue { target, .. }
        | Op::CmpBranch { target, .. }
        | Op::LoadCmpBranch { target, .. } => Some(target),
        _ => None,
    }
}

/// `(reads, writes)` register operands of an instruction.
fn reg_uses(op: &Op) -> (Vec<u16>, Vec<u16>) {
    match op {
        Op::Const { dst, .. }
        | Op::LoadVar { dst, .. }
        | Op::LoadEventTime { dst }
        | Op::LoadDepData { dst }
        | Op::LoadEnergy { dst }
        | Op::LoadCmpBranch { dst, .. } => (vec![], vec![*dst]),
        Op::Bin { dst, a, b, .. } | Op::CmpBranch { dst, a, b, .. } => (vec![*a, *b], vec![*dst]),
        Op::Not { dst, src } => (vec![*src], vec![*dst]),
        Op::AssertBool { src }
        | Op::JumpIfFalse { src, .. }
        | Op::JumpIfTrue { src, .. }
        | Op::StoreVar { src, .. } => (vec![*src], vec![]),
        Op::Jump { .. } | Op::ConstStore { .. } => (vec![], vec![]),
    }
}

/// One past the highest register index any instruction touches
/// (minimum 1, so analysis vectors are never empty).
fn max_reg_count(ops: &[Op]) -> usize {
    ops.iter()
        .map(|op| {
            let (r, w) = reg_uses(op);
            r.iter()
                .chain(w.iter())
                .map(|&x| x as usize + 1)
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
        .max(1)
}

/// Local successor indices of instruction `i` (exit = `len`).
fn successors(ops: &[Op], i: usize) -> (usize, Option<usize>) {
    match &ops[i] {
        Op::Jump { target } => (*target as usize, None),
        op => match target_of(op) {
            Some(t) => (i + 1, Some(t as usize)),
            None => (i + 1, None),
        },
    }
}

/// Indices that are branch targets (labels). The exit pseudo-index is
/// not included.
fn label_set(ops: &[Op]) -> Vec<bool> {
    let mut labels = vec![false; ops.len()];
    for op in ops {
        if let Some(t) = target_of(op) {
            if let Some(l) = labels.get_mut(t as usize) {
                *l = true;
            }
        }
    }
    labels
}

/// Pass 1: retarget branches that land on an unconditional `Jump` to
/// its final destination. Targets only ever move forward.
fn thread_jumps(ops: &mut [Op]) -> bool {
    let mut changed = false;
    for i in 0..ops.len() {
        let Some(t0) = target_of(&ops[i]) else {
            continue;
        };
        let mut t = t0;
        while let Some(Op::Jump { target }) = ops.get(t as usize) {
            t = *target;
        }
        if t != t0 {
            *target_mut(&mut ops[i]).expect("has target") = t;
            changed = true;
        }
    }
    changed
}

/// Interns a value into the literal pool (deduplicating by equality).
/// Returns `None` if the pool is full.
fn intern(lits: &mut Vec<Value>, v: Value) -> Option<u16> {
    let idx = match lits.iter().position(|l| *l == v) {
        Some(i) => i,
        None => {
            if lits.len() >= u16::MAX as usize {
                return None;
            }
            lits.push(v);
            lits.len() - 1
        }
    };
    Some(idx as u16)
}

/// Pass 2: straight-line constant folding. Registers holding known
/// pool literals fold `Bin`/`Not` into `Const` — but only when `apply`
/// succeeds, so an erroring operation is never optimized away.
/// Knowledge resets at labels (join points).
fn fold_constants(ops: &mut [Op], lits: &mut Vec<Value>) -> bool {
    let labels = label_set(ops);
    let mut known: Vec<Option<Value>> = Vec::new();
    let set = |known: &mut Vec<Option<Value>>, r: u16, v: Option<Value>| {
        let r = r as usize;
        if known.len() <= r {
            known.resize(r + 1, None);
        }
        known[r] = v;
    };
    let get = |known: &[Option<Value>], r: u16| known.get(r as usize).copied().flatten();
    let mut changed = false;
    for i in 0..ops.len() {
        if labels[i] {
            known.clear();
        }
        match ops[i] {
            Op::Const { dst, lit } => set(&mut known, dst, lits.get(lit as usize).copied()),
            Op::Bin { op, dst, a, b } => {
                let folded = match (get(&known, a), get(&known, b)) {
                    (Some(va), Some(vb)) => apply(op, va, vb).ok(),
                    _ => None,
                };
                match folded.and_then(|v| intern(lits, v).map(|l| (v, l))) {
                    Some((v, lit)) => {
                        ops[i] = Op::Const { dst, lit };
                        set(&mut known, dst, Some(v));
                        changed = true;
                    }
                    None => set(&mut known, dst, None),
                }
            }
            Op::Not { dst, src } => match get(&known, src) {
                Some(Value::Bool(b)) => {
                    if let Some(lit) = intern(lits, Value::Bool(!b)) {
                        ops[i] = Op::Const { dst, lit };
                        set(&mut known, dst, Some(Value::Bool(!b)));
                        changed = true;
                    } else {
                        set(&mut known, dst, None);
                    }
                }
                _ => set(&mut known, dst, None),
            },
            Op::LoadVar { dst, .. }
            | Op::LoadEventTime { dst }
            | Op::LoadDepData { dst }
            | Op::LoadEnergy { dst }
            | Op::CmpBranch { dst, .. }
            | Op::LoadCmpBranch { dst, .. } => set(&mut known, dst, None),
            Op::AssertBool { .. }
            | Op::JumpIfFalse { .. }
            | Op::JumpIfTrue { .. }
            | Op::Jump { .. }
            | Op::StoreVar { .. }
            | Op::ConstStore { .. } => {}
        }
    }
    changed
}

/// Instructions reachable from the range entry.
fn reachable(ops: &[Op]) -> Vec<bool> {
    let mut reach = vec![false; ops.len()];
    let mut stack = vec![0usize];
    while let Some(i) = stack.pop() {
        if i >= ops.len() || reach[i] {
            continue;
        }
        reach[i] = true;
        let (s0, s1) = successors(ops, i);
        stack.push(s0);
        if let Some(s1) = s1 {
            stack.push(s1);
        }
    }
    reach
}

/// Backward liveness: `live_after[i][r]` = register `r` may be read
/// after instruction `i` completes. Exact in one reverse pass because
/// every edge is forward. Guards keep register 0 live at exit (the
/// engine reads the verdict there).
fn liveness(ops: &[Op], is_guard: bool) -> Vec<Vec<bool>> {
    let nregs = max_reg_count(ops);
    let mut exit = vec![false; nregs];
    if is_guard {
        exit[0] = true;
    }
    let mut live_in: Vec<Vec<bool>> = vec![vec![false; nregs]; ops.len() + 1];
    live_in[ops.len()] = exit;
    let mut live_after = vec![vec![false; nregs]; ops.len()];
    for i in (0..ops.len()).rev() {
        let (s0, s1) = successors(ops, i);
        let mut out = live_in[s0.min(ops.len())].clone();
        if let Some(s1) = s1 {
            for (o, l) in out.iter_mut().zip(&live_in[s1.min(ops.len())]) {
                *o |= *l;
            }
        }
        live_after[i] = out.clone();
        let (reads, writes) = reg_uses(&ops[i]);
        for w in writes {
            out[w as usize] = false;
        }
        for r in reads {
            out[r as usize] = true;
        }
        live_in[i] = out;
    }
    live_after
}

/// Forward type provenance: `Some(ty)` when a register provably holds
/// that type at the instruction's entry. With `trust_var_types`,
/// `LoadVar` yields the slot's declared type (sound at runtime, used
/// for dead-store coercion proofs); without it, only instruction
/// provenance counts (matching what the verifier itself derives, used
/// for `AssertBool` removal so the rewrite stays verifier-monotone).
/// Knowledge resets at labels.
fn type_provenance(
    ops: &[Op],
    lits: &[Value],
    var_tys: &[VarType],
    trust_var_types: bool,
) -> Vec<Vec<Option<VarType>>> {
    let labels = label_set(ops);
    let nregs = max_reg_count(ops);
    let mut tys: Vec<Option<VarType>> = vec![None; nregs];
    let mut at_entry = vec![Vec::new(); ops.len()];
    for i in 0..ops.len() {
        if labels[i] {
            tys.iter_mut().for_each(|t| *t = None);
        }
        at_entry[i] = tys.clone();
        let mut set = |r: u16, t: Option<VarType>| {
            if let Some(slot) = tys.get_mut(r as usize) {
                *slot = t;
            }
        };
        match &ops[i] {
            Op::Const { dst, lit } => set(*dst, lits.get(*lit as usize).map(|v| v.ty())),
            Op::LoadVar { dst, slot } => set(
                *dst,
                var_tys
                    .get(*slot as usize)
                    .copied()
                    .filter(|_| trust_var_types),
            ),
            Op::LoadEventTime { dst } => set(*dst, Some(VarType::Time)),
            Op::LoadDepData { dst } => set(*dst, Some(VarType::Float)),
            Op::LoadEnergy { dst } => set(*dst, Some(VarType::Int)),
            Op::Bin { op, dst, .. } => {
                // On the surviving path a comparison (or short-circuit
                // operator) produced a bool; arithmetic is typed only
                // by the verifier's own rule, so stay conservative.
                let t = match op {
                    BinOp::Add | BinOp::Sub => None,
                    _ => Some(VarType::Bool),
                };
                set(*dst, t);
            }
            Op::Not { dst, .. } => set(*dst, Some(VarType::Bool)),
            // Past these, the source/result register survived an
            // `as_bool`, so it is `Bool` on every continuing path.
            Op::AssertBool { src } => set(*src, Some(VarType::Bool)),
            Op::JumpIfFalse { src, .. } | Op::JumpIfTrue { src, .. } => {
                set(*src, Some(VarType::Bool))
            }
            Op::CmpBranch { dst, .. } | Op::LoadCmpBranch { dst, .. } => {
                set(*dst, Some(VarType::Bool))
            }
            Op::Jump { .. } | Op::StoreVar { .. } | Op::ConstStore { .. } => {}
        }
    }
    at_entry
}

/// `true` when coercing a value of type `from` into a slot of type
/// `to` can never raise `TypeMismatch` (see `crate::exec::coerce`).
fn coerce_never_errors(from: VarType, to: VarType) -> bool {
    from == to
        || matches!(
            (from, to),
            (VarType::Int, VarType::Time)
                | (VarType::Time, VarType::Int)
                | (VarType::Int, VarType::Float)
        )
}

/// Pass 3: dead code elimination. See the module docs for the exact
/// removal classes; every one preserves both runtime semantics (for
/// verified machines) and verifier acceptance.
fn dce(ops: &mut Vec<Op>, lits: &[Value], var_tys: &[VarType], is_guard: bool) -> bool {
    let reach = reachable(ops);
    let live = liveness(ops, is_guard);
    let by_op = type_provenance(ops, lits, var_tys, false);
    let with_vars = type_provenance(ops, lits, var_tys, true);
    let labels = label_set(ops);

    let mut keep = vec![true; ops.len()];
    let mut changed = false;
    for i in 0..ops.len() {
        let dead = |r: u16| !live[i].get(r as usize).copied().unwrap_or(false);
        let remove = if !reach[i] {
            true
        } else {
            match &ops[i] {
                Op::Const { dst, .. }
                | Op::LoadVar { dst, .. }
                | Op::LoadEventTime { dst }
                | Op::LoadEnergy { dst } => dead(*dst),
                Op::AssertBool { src } => {
                    by_op[i].get(*src as usize).copied().flatten() == Some(VarType::Bool)
                }
                Op::Jump { target } => *target as usize == i + 1,
                Op::StoreVar { slot, src } => store_is_dead(
                    ops,
                    &labels,
                    var_tys,
                    i,
                    *slot,
                    with_vars[i].get(*src as usize).copied().flatten(),
                ),
                Op::ConstStore { slot, lit } => store_is_dead(
                    ops,
                    &labels,
                    var_tys,
                    i,
                    *slot,
                    lits.get(*lit as usize).map(|v| v.ty()),
                ),
                _ => false,
            }
        };
        if remove {
            keep[i] = false;
            changed = true;
        }
    }
    if changed {
        compact_ops(ops, &keep);
    }
    changed
}

/// A store at `i` is dead when a same-slot store strictly later on the
/// same straight line overwrites it before any read of the slot, and
/// its own coercion provably cannot error (so removing it removes no
/// error surface).
fn store_is_dead(
    ops: &[Op],
    labels: &[bool],
    var_tys: &[VarType],
    i: usize,
    slot: u16,
    ty: Option<VarType>,
) -> bool {
    let Some(ty) = ty else {
        return false;
    };
    let Some(slot_ty) = var_tys.get(slot as usize) else {
        return false;
    };
    if !coerce_never_errors(ty, *slot_ty) {
        return false;
    }
    for (j, op) in ops.iter().enumerate().skip(i + 1) {
        if labels[j] || target_of(op).is_some() {
            return false;
        }
        match op {
            Op::LoadVar { slot: s, .. } | Op::LoadCmpBranch { slot: s, .. } if *s == slot => {
                return false;
            }
            Op::StoreVar { slot: s, .. } | Op::ConstStore { slot: s, .. } if *s == slot => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Removes un-kept instructions, remapping every target to the first
/// kept instruction at or after it (removed instructions are provably
/// effect-free, so falling through them is equivalent).
fn compact_ops(ops: &mut Vec<Op>, keep: &[bool]) {
    let mut map = Vec::with_capacity(ops.len() + 1);
    let mut n = 0u32;
    for &k in keep {
        map.push(n);
        if k {
            n += 1;
        }
    }
    map.push(n);
    let mut out = Vec::with_capacity(n as usize);
    for (i, op) in ops.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let mut op = *op;
        if let Some(t) = target_mut(&mut op) {
            *t = map[*t as usize];
        }
        out.push(op);
    }
    *ops = out;
}

/// `true` for the operators fusion may embed in a branch.
fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
    )
}

/// Pass 4: superinstruction fusion. Windows never span labels, and a
/// window's temporary registers must be dead after it (true for all
/// compiler-emitted shapes, checked explicitly for safety).
fn fuse(ops: &mut Vec<Op>, _lits: &[Value], is_guard: bool) -> bool {
    let labels = label_set(ops);
    let live = liveness(ops, is_guard);
    let len = ops.len();
    let no_label = |mut r: Range<usize>| r.all(|j| !labels[j]);
    // Temp register `r` may vanish if the fused op overwrites it
    // (r == dst) or nothing reads it after the window's last op.
    let temp_ok = |last: usize, r: u16, dst: u16| {
        r == dst || !live[last].get(r as usize).copied().unwrap_or(false)
    };

    let mut out: Vec<Op> = Vec::with_capacity(len);
    let mut map = vec![0u32; len + 1];
    let mut changed = false;
    let mut i = 0;
    while i < len {
        let fused: Option<(Op, usize)> = match ops[i..] {
            // LoadVar ; Const ; Bin cmp [; JumpIf*] → LoadCmpBranch.
            [Op::LoadVar { dst: r1, slot }, Op::Const { dst: r2, lit }, Op::Bin { op, dst, a, b }, ..]
                if is_cmp(op) && a == r1 && b == r2 && r1 != r2 && no_label(i + 1..i + 3) =>
            {
                match ops.get(i + 3) {
                    Some(&Op::JumpIfFalse { src, target })
                        if src == dst
                            && !labels[i + 3]
                            && temp_ok(i + 3, r1, dst)
                            && temp_ok(i + 3, r2, dst) =>
                    {
                        Some((
                            Op::LoadCmpBranch {
                                op,
                                dst,
                                slot,
                                lit,
                                target,
                                when: false,
                            },
                            4,
                        ))
                    }
                    Some(&Op::JumpIfTrue { src, target })
                        if src == dst
                            && !labels[i + 3]
                            && temp_ok(i + 3, r1, dst)
                            && temp_ok(i + 3, r2, dst) =>
                    {
                        Some((
                            Op::LoadCmpBranch {
                                op,
                                dst,
                                slot,
                                lit,
                                target,
                                when: true,
                            },
                            4,
                        ))
                    }
                    _ if temp_ok(i + 2, r1, dst) && temp_ok(i + 2, r2, dst) => Some((
                        // No consumer branch: fall through either way.
                        Op::LoadCmpBranch {
                            op,
                            dst,
                            slot,
                            lit,
                            target: (i + 3) as u32,
                            when: false,
                        },
                        3,
                    )),
                    _ => None,
                }
            }
            // Bin cmp ; JumpIf* → CmpBranch.
            [Op::Bin { op, dst, a, b }, Op::JumpIfFalse { src, target }, ..]
                if is_cmp(op) && src == dst && !labels[i + 1] =>
            {
                Some((
                    Op::CmpBranch {
                        op,
                        dst,
                        a,
                        b,
                        target,
                        when: false,
                    },
                    2,
                ))
            }
            [Op::Bin { op, dst, a, b }, Op::JumpIfTrue { src, target }, ..]
                if is_cmp(op) && src == dst && !labels[i + 1] =>
            {
                Some((
                    Op::CmpBranch {
                        op,
                        dst,
                        a,
                        b,
                        target,
                        when: true,
                    },
                    2,
                ))
            }
            // Const ; StoreVar → ConstStore (temp register dies).
            [Op::Const { dst, lit }, Op::StoreVar { slot, src }, ..]
                if src == dst
                    && !labels[i + 1]
                    && !live[i + 1].get(dst as usize).copied().unwrap_or(false) =>
            {
                Some((Op::ConstStore { slot, lit }, 2))
            }
            _ => None,
        };
        match fused {
            Some((op, width)) => {
                for entry in map.iter_mut().skip(i).take(width) {
                    *entry = out.len() as u32;
                }
                out.push(op);
                i += width;
                changed = true;
            }
            None => {
                map[i] = out.len() as u32;
                out.push(ops[i]);
                i += 1;
            }
        }
    }
    map[len] = out.len() as u32;
    if changed {
        for op in &mut out {
            if let Some(t) = target_mut(op) {
                *t = map[*t as usize];
            }
        }
        *ops = out;
    }
    changed
}

/// Pass 5: renumber surviving registers densely. Rank order preserves
/// relative indices, so register 0 — when used at all, as every guard
/// does for its result — stays register 0.
fn compact_registers(ops: &mut [Op]) {
    let mut used: Vec<u16> = ops
        .iter()
        .flat_map(|op| {
            let (r, w) = reg_uses(op);
            r.into_iter().chain(w)
        })
        .collect();
    used.sort_unstable();
    used.dedup();
    if used.iter().enumerate().all(|(i, &r)| i as u16 == r) {
        return;
    }
    let rank = |r: u16| used.binary_search(&r).expect("collected") as u16;
    for op in ops.iter_mut() {
        match op {
            Op::Const { dst, .. }
            | Op::LoadVar { dst, .. }
            | Op::LoadEventTime { dst }
            | Op::LoadDepData { dst }
            | Op::LoadEnergy { dst }
            | Op::LoadCmpBranch { dst, .. } => *dst = rank(*dst),
            Op::Bin { dst, a, b, .. } | Op::CmpBranch { dst, a, b, .. } => {
                *dst = rank(*dst);
                *a = rank(*a);
                *b = rank(*b);
            }
            Op::Not { dst, src } => {
                *dst = rank(*dst);
                *src = rank(*src);
            }
            Op::AssertBool { src }
            | Op::JumpIfFalse { src, .. }
            | Op::JumpIfTrue { src, .. }
            | Op::StoreVar { src, .. } => *src = rank(*src),
            Op::Jump { .. } | Op::ConstStore { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{CompiledEvent, CompiledSuite, Op};
    use crate::expr::EventCtx;
    use artemis_core::app::{AppGraph, AppGraphBuilder};
    use artemis_core::event::EventKind;

    /// Spec exercising every property compiler — the same coverage
    /// shape the verifier fuzzer mutates.
    const SPEC: &str = "\
        a { maxTries: 3 onFail: skipPath; }\n\
        b { MITD: 10s dpTask: a onFail: restartPath maxAttempt: 2 onFail: skipPath; \
            collect: 2 dpTask: a onFail: restartPath; \
            maxDuration: 5s onFail: skipTask; }";

    fn app() -> AppGraph {
        let mut b = AppGraphBuilder::new();
        let a = b.task("a");
        let t = b.task("b");
        b.path(&[a, t]);
        b.build().unwrap()
    }

    fn suites() -> (crate::MonitorSuite, CompiledSuite, CompiledSuite) {
        let app = app();
        let suite = crate::compile(SPEC, &app).unwrap();
        let none = CompiledSuite::compile_with(&suite, &app, OptLevel::None).unwrap();
        let full = CompiledSuite::compile_with(&suite, &app, OptLevel::Full).unwrap();
        (suite, none, full)
    }

    /// Full strictly shrinks the guard-heavy spec's bytecode.
    #[test]
    fn full_shrinks_bytecode() {
        let (_, none, full) = suites();
        let before: usize = none.machines().iter().map(|m| m.op_count()).sum();
        let after: usize = full.machines().iter().map(|m| m.op_count()).sum();
        assert!(
            after < before,
            "optimizer did not shrink the suite: {after} >= {before}"
        );
    }

    /// The optimized suite actually uses the fused superinstructions
    /// (guard tails → `LoadCmpBranch`, literal writes → `ConstStore`),
    /// and the unoptimized oracle contains none of them.
    #[test]
    fn full_emits_superinstructions_none_does_not() {
        let (_, none, full) = suites();
        let count = |s: &CompiledSuite, pred: fn(&Op) -> bool| -> usize {
            s.machines()
                .iter()
                .flat_map(|m| m.to_raw().code)
                .filter(|op| pred(op))
                .count()
        };
        let fused = |op: &Op| {
            matches!(
                op,
                Op::CmpBranch { .. } | Op::LoadCmpBranch { .. } | Op::ConstStore { .. }
            )
        };
        assert_eq!(
            count(&none, fused),
            0,
            "oracle must stay superinstruction-free"
        );
        assert!(
            count(&full, |op| matches!(op, Op::LoadCmpBranch { .. })) > 0,
            "no guard tail fused to LoadCmpBranch"
        );
        assert!(
            count(&full, |op| matches!(op, Op::ConstStore { .. })) > 0,
            "no literal write fused to ConstStore"
        );
    }

    /// No shipped bytecode — at either level — contains a jump to its
    /// own fall-through (`Jump { target == pc + 1 }`), the dead-op
    /// shape the `if` codegen used to emit for empty else branches.
    #[test]
    fn no_self_fall_through_jumps_at_any_level() {
        let (_, none, full) = suites();
        for (level, suite) in [("none", &none), ("full", &full)] {
            for m in suite.machines() {
                let code = m.to_raw().code;
                for (pc, op) in code.iter().enumerate() {
                    if let Op::Jump { target } = op {
                        assert_ne!(
                            *target as usize,
                            pc + 1,
                            "self-fall-through jump at pc {pc} (opt level {level})"
                        );
                    }
                }
            }
        }
    }

    /// Differential oracle: `OptLevel::Full` and `OptLevel::None` agree
    /// event for event — verdicts, state, and variable values — across
    /// an event grid covering guards, time arithmetic, and depData.
    #[test]
    fn full_matches_none_on_event_grid() {
        let (suite, none, full) = suites();
        for ((src, n), f) in suite
            .machines()
            .iter()
            .zip(none.machines())
            .zip(full.machines())
        {
            let mut nstate = (n.initial_state(), src.initial_vars());
            let mut fstate = (f.initial_state(), src.initial_vars());
            let mut nregs = vec![Value::Int(0); n.max_regs().max(1)];
            let mut fregs = vec![Value::Int(0); f.max_regs().max(1)];
            let mut seq = 0u64;
            for kind in [EventKind::StartTask, EventKind::EndTask] {
                for task in [0u32, 1, u32::MAX] {
                    for burst in 0..4 {
                        seq += 1;
                        let ctx = EventCtx {
                            // Mix sub-threshold and past-deadline gaps.
                            time_us: seq * if burst < 2 { 1_000 } else { 7_000_000 },
                            dep_data: (seq % 3 == 0).then_some(seq as f64),
                            energy_nj: 42_000,
                        };
                        let ev = CompiledEvent { kind, task, ctx };
                        let nr = n
                            .step(&mut nstate.0, &mut nstate.1, &ev, &mut nregs)
                            .map(|e| e.cloned());
                        let fr = f
                            .step(&mut fstate.0, &mut fstate.1, &ev, &mut fregs)
                            .map(|e| e.cloned());
                        assert_eq!(nr, fr, "{}: verdict diverged at seq {seq}", src.name);
                        assert_eq!(nstate.0, fstate.0, "{}: state diverged", src.name);
                        assert_eq!(nstate.1, fstate.1, "{}: vars diverged", src.name);
                    }
                }
            }
        }
    }

    /// Optimization only ever tightens the static compute ceiling:
    /// `Full` step costs are `<=` `None`'s on every key, strictly `<`
    /// on at least one guard-bearing key, and both count at least one
    /// instruction wherever a transition dispatches.
    #[test]
    fn step_cost_tightens_with_optimization() {
        let (_, none, full) = suites();
        let mut strictly_tighter = false;
        for (n, f) in none.machines().iter().zip(full.machines()) {
            for kind in [EventKind::StartTask, EventKind::EndTask] {
                for task in [0u32, 1, u32::MAX] {
                    let (nc, fc) = (n.step_cost(kind, task), f.step_cost(kind, task));
                    assert!(
                        fc.cycles <= nc.cycles && fc.instructions <= nc.instructions,
                        "optimization raised a ceiling for {kind:?}/{task}: {fc:?} > {nc:?}"
                    );
                    strictly_tighter |= fc.cycles < nc.cycles;
                    if n.dispatch_len(kind, task) > 0 {
                        assert!(nc.instructions > 0, "dispatching key with zero ceiling");
                    }
                }
            }
        }
        assert!(strictly_tighter, "no key tightened at all");
    }
}
