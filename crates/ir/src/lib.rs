//! The ARTEMIS intermediate language: state-machine monitors.
//!
//! Properties written in the specification language are lowered to
//! finite-state machines (paper §3.3, Figure 7), which the monitor
//! engine executes power-failure-resiliently. This crate provides:
//!
//! - the FSM model ([`fsm`]) and its expression language ([`expr`]);
//! - the reference interpreter ([`exec`]) — the semantics the
//!   persistent engine in `artemis-monitor` delegates to;
//! - an ahead-of-time compiler ([`mod@compile`]) lowering machines to
//!   slot-indexed bytecode with per-event dispatch tables — the
//!   allocation-free fast path the engine runs by default;
//! - a bytecode optimizer ([`mod@opt`]) running between codegen and
//!   the verifier: constant folding, dead-code/dead-store
//!   elimination, jump threading, fused superinstructions, and
//!   register compaction, with `OptLevel::None` kept as the
//!   differential oracle;
//! - the model-to-model transformation ([`mod@lower`]) from resolved
//!   property sets to machines;
//! - a textual IR syntax with printer ([`mod@print`]) and parser
//!   ([`parse`]) so monitors can be authored directly when the property
//!   language lacks expressiveness;
//! - static validation ([`validate`]) for hand-written IR;
//! - install-time static analysis ([`analysis`]): a bytecode verifier,
//!   worst-case FRAM resource bounds, reachability, and cross-monitor
//!   conflict detection over compiled suites;
//! - model-to-text code generation ([`codegen`]) emitting C (in the
//!   paper's ImmortalThreads style, Figure 10) and Rust monitor source.

pub mod analysis;
pub mod codegen;
pub mod compile;
pub mod dot;
pub mod exec;
pub mod expr;
pub mod fsm;
pub mod layout;
pub mod lower;
pub mod opt;
pub mod parse;
pub mod print;
pub mod validate;

use artemis_core::app::AppGraph;
use artemis_spec::SpecAst;

pub use analysis::{
    analyze_suite, batch_bounds, batch_bounds_for, suite_bounds, suite_bounds_for, BatchBounds,
    LayoutKind, SuiteBounds,
};
pub use compile::{
    AccessSet, CompileIssue, CompiledEvent, CompiledMachine, CompiledSuite, RawMachine, StepCost,
};
pub use exec::{IrEvent, MachineState};
pub use fsm::{MonitorSuite, StateMachine};
pub use layout::{MachineLayout, SlotEnc, SlotLayout};
pub use lower::lower_set;
pub use opt::{optimize_machine, OptLevel};

/// Everything that can go wrong when compiling a specification.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// Name resolution / validation failed.
    Sema(artemis_spec::Diag),
    /// Lowering failed (internal inconsistency).
    Lower(lower::LowerError),
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileError::Sema(d) => write!(f, "{d}"),
            CompileError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a parsed specification into a monitor suite: semantic
/// resolution followed by lowering (the paper's model-to-model
/// transformation pipeline, Figure 3).
///
/// # Examples
///
/// ```
/// use artemis_core::app::AppGraphBuilder;
///
/// let mut b = AppGraphBuilder::new();
/// let sense = b.task("sense");
/// b.path(&[sense]);
/// let app = b.build().unwrap();
///
/// let ast = artemis_spec::parse("sense: { maxTries: 3 onFail: skipPath; }").unwrap();
/// let suite = artemis_ir::lower(&ast, &app).unwrap();
/// assert_eq!(suite.machines().len(), 1);
/// assert_eq!(suite.machines()[0].task, "sense");
/// ```
pub fn lower(ast: &SpecAst, app: &AppGraph) -> Result<MonitorSuite, CompileError> {
    let set = artemis_spec::resolve(ast, app).map_err(CompileError::Sema)?;
    lower_set(&set, app).map_err(CompileError::Lower)
}

/// Compiles specification text straight to a monitor suite.
pub fn compile(source: &str, app: &AppGraph) -> Result<MonitorSuite, CompileError> {
    let ast = artemis_spec::parse(source).map_err(CompileError::Sema)?;
    lower(&ast, app)
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_core::app::AppGraphBuilder;

    #[test]
    fn compile_pipeline_end_to_end() {
        let mut b = AppGraphBuilder::new();
        let a = b.task("a");
        let s = b.task("send");
        b.path(&[a, s]);
        let app = b.build().unwrap();
        let suite = compile("a { maxTries: 5 onFail: skipPath; }", &app).unwrap();
        assert_eq!(suite.len(), 1);
        // Sema errors surface through CompileError.
        let err = compile("ghost { maxTries: 5 onFail: skipPath; }", &app).unwrap_err();
        assert!(matches!(err, CompileError::Sema(_)));
        assert!(err.to_string().contains("ghost"));
    }
}
