//! Static validation of IR machines.
//!
//! Generated machines are correct by construction; hand-written IR (the
//! escape hatch of §3.3) is checked before it reaches the monitor
//! engine: state/variable references must resolve, guards must be
//! boolean, `depData` may only be read under `endTask` triggers, and
//! unreachable transitions (shadowed by an earlier unguarded or
//! identically-guarded one) and write-only variables are flagged.

use core::fmt;
use std::collections::HashSet;

use crate::expr::{Expr, VarType};
use crate::fsm::{StateMachine, Stmt, Trigger};

/// How bad an issue is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// The machine would fail at runtime.
    Error,
    /// Suspicious but executable.
    Warning,
}

/// One validation finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Issue {
    /// Error or warning.
    pub severity: Severity,
    /// The machine the issue is in.
    pub machine: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{tag} in machine `{}`: {}", self.machine, self.message)
    }
}

impl From<Issue> for artemis_spec::Diagnostic {
    fn from(issue: Issue) -> artemis_spec::Diagnostic {
        let severity = match issue.severity {
            Severity::Error => artemis_spec::Severity::Error,
            Severity::Warning => artemis_spec::Severity::Warning,
        };
        artemis_spec::Diagnostic {
            severity,
            pass: "validate",
            subject: format!("machine `{}`", issue.machine),
            message: issue.message,
            span: None,
        }
    }
}

/// Validates a machine; returns all findings (errors first).
pub fn validate(m: &StateMachine) -> Vec<Issue> {
    let mut issues = Vec::new();
    let err = |issues: &mut Vec<Issue>, msg: String| {
        issues.push(Issue {
            severity: Severity::Error,
            machine: m.name.clone(),
            message: msg,
        })
    };
    let warn = |issues: &mut Vec<Issue>, msg: String| {
        issues.push(Issue {
            severity: Severity::Warning,
            machine: m.name.clone(),
            message: msg,
        })
    };

    if m.states.is_empty() {
        err(&mut issues, "machine has no states".into());
        return issues;
    }
    if m.initial as usize >= m.states.len() {
        err(
            &mut issues,
            format!("initial state index {} out of range", m.initial),
        );
    }

    // Duplicate names.
    for (i, v) in m.vars.iter().enumerate() {
        if m.vars[..i].iter().any(|w| w.name == v.name) {
            err(&mut issues, format!("duplicate variable `{}`", v.name));
        }
        if v.init.ty() != v.ty {
            err(
                &mut issues,
                format!(
                    "variable `{}` declared {} but initialised with {}",
                    v.name,
                    v.ty.keyword(),
                    v.init.ty().keyword()
                ),
            );
        }
    }
    for (i, s) in m.states.iter().enumerate() {
        if m.states[..i].iter().any(|r| r == s) {
            err(&mut issues, format!("duplicate state `{s}`"));
        }
    }

    for (ti, t) in m.transitions.iter().enumerate() {
        let loc = format!("transition #{ti}");
        if t.from as usize >= m.states.len() || t.to as usize >= m.states.len() {
            err(&mut issues, format!("{loc}: state index out of range"));
            continue;
        }
        let allows_dep_data = matches!(t.trigger, Trigger::End(_) | Trigger::Any);
        if let Some(g) = &t.guard {
            match infer(g, m) {
                Ok(VarType::Bool) => {}
                Ok(other) => err(
                    &mut issues,
                    format!("{loc}: guard has type {}, expected bool", other.keyword()),
                ),
                Err(e) => err(&mut issues, format!("{loc}: {e}")),
            }
            if !allows_dep_data && mentions_dep_data(g) {
                err(
                    &mut issues,
                    format!("{loc}: `depData` read under a startTask trigger"),
                );
            }
        }
        for s in &t.body {
            check_stmt(s, m, &loc, allows_dep_data, &mut issues);
        }

        // Shadowing: an earlier transition with the same source and an
        // overlapping trigger makes this one dead when it is unguarded
        // (always wins) or carries the identical guard (wins whenever
        // this one would fire).
        for (pi, p) in m.transitions[..ti].iter().enumerate() {
            if p.from != t.from || !triggers_overlap(&p.trigger, &t.trigger) {
                continue;
            }
            if p.guard.is_none() {
                warn(
                    &mut issues,
                    format!("{loc}: unreachable, shadowed by unguarded transition #{pi}"),
                );
            } else if p.guard == t.guard {
                warn(
                    &mut issues,
                    format!(
                        "{loc}: unreachable, shadowed by transition #{pi} with an identical guard"
                    ),
                );
            }
        }
    }

    // Write-only variables: assigned somewhere but read nowhere (no
    // guard, body expression or if-condition mentions them) — the
    // assignments burn FRAM commits for a value nothing observes.
    let mut reads = HashSet::new();
    let mut writes = HashSet::new();
    for t in &m.transitions {
        if let Some(g) = &t.guard {
            expr_reads(g, &mut reads);
        }
        for s in &t.body {
            stmt_reads_writes(s, &mut reads, &mut writes);
        }
    }
    for v in &m.vars {
        if writes.contains(v.name.as_str()) && !reads.contains(v.name.as_str()) {
            warn(
                &mut issues,
                format!("variable `{}` is assigned but never read", v.name),
            );
        }
    }

    issues.sort_by_key(|i| match i.severity {
        Severity::Error => 0,
        Severity::Warning => 1,
    });
    issues
}

/// Validates a machine and fails on the first error.
pub fn validate_strict(m: &StateMachine) -> Result<Vec<Issue>, Issue> {
    let issues = validate(m);
    if let Some(e) = issues.iter().find(|i| i.severity == Severity::Error) {
        return Err(e.clone());
    }
    Ok(issues)
}

fn check_stmt(s: &Stmt, m: &StateMachine, loc: &str, dep_ok: bool, issues: &mut Vec<Issue>) {
    match s {
        Stmt::Assign(name, e) => {
            let Some(idx) = m.var_index(name) else {
                issues.push(Issue {
                    severity: Severity::Error,
                    machine: m.name.clone(),
                    message: format!("{loc}: assignment to unknown variable `{name}`"),
                });
                return;
            };
            if !dep_ok && mentions_dep_data(e) {
                issues.push(Issue {
                    severity: Severity::Error,
                    machine: m.name.clone(),
                    message: format!("{loc}: `depData` read under a startTask trigger"),
                });
            }
            match infer(e, m) {
                Ok(ty) => {
                    let declared = m.vars[idx].ty;
                    let compatible = ty == declared
                        || matches!(
                            (ty, declared),
                            (VarType::Int, VarType::Time)
                                | (VarType::Time, VarType::Int)
                                | (VarType::Int, VarType::Float)
                        );
                    if !compatible {
                        issues.push(Issue {
                            severity: Severity::Error,
                            machine: m.name.clone(),
                            message: format!(
                                "{loc}: assigning {} to `{name}: {}`",
                                ty.keyword(),
                                declared.keyword()
                            ),
                        });
                    }
                }
                Err(e) => issues.push(Issue {
                    severity: Severity::Error,
                    machine: m.name.clone(),
                    message: format!("{loc}: {e}"),
                }),
            }
        }
        Stmt::If(cond, then_b, else_b) => {
            match infer(cond, m) {
                Ok(VarType::Bool) => {}
                Ok(other) => issues.push(Issue {
                    severity: Severity::Error,
                    machine: m.name.clone(),
                    message: format!(
                        "{loc}: if-condition has type {}, expected bool",
                        other.keyword()
                    ),
                }),
                Err(e) => issues.push(Issue {
                    severity: Severity::Error,
                    machine: m.name.clone(),
                    message: format!("{loc}: {e}"),
                }),
            }
            for s in then_b.iter().chain(else_b) {
                check_stmt(s, m, loc, dep_ok, issues);
            }
        }
    }
}

/// Collects variable names an expression reads.
fn expr_reads<'m>(e: &'m Expr, out: &mut HashSet<&'m str>) {
    match e {
        Expr::Var(name) => {
            out.insert(name.as_str());
        }
        Expr::Bin(_, l, r) => {
            expr_reads(l, out);
            expr_reads(r, out);
        }
        Expr::Not(inner) => expr_reads(inner, out),
        _ => {}
    }
}

/// Collects variable names a statement reads and writes.
fn stmt_reads_writes<'m>(s: &'m Stmt, reads: &mut HashSet<&'m str>, writes: &mut HashSet<&'m str>) {
    match s {
        Stmt::Assign(name, e) => {
            writes.insert(name.as_str());
            expr_reads(e, reads);
        }
        Stmt::If(cond, then_b, else_b) => {
            expr_reads(cond, reads);
            for s in then_b.iter().chain(else_b) {
                stmt_reads_writes(s, reads, writes);
            }
        }
    }
}

fn triggers_overlap(a: &Trigger, b: &Trigger) -> bool {
    use crate::fsm::TaskPat;
    match (a, b) {
        (Trigger::Any, _) | (_, Trigger::Any) => true,
        (Trigger::Start(pa), Trigger::Start(pb)) | (Trigger::End(pa), Trigger::End(pb)) => {
            match (pa, pb) {
                (TaskPat::Any, _) | (_, TaskPat::Any) => true,
                (TaskPat::Named(x), TaskPat::Named(y)) => x == y,
            }
        }
        _ => false,
    }
}

fn mentions_dep_data(e: &Expr) -> bool {
    match e {
        Expr::DepData => true,
        Expr::Bin(_, l, r) => mentions_dep_data(l) || mentions_dep_data(r),
        Expr::Not(i) => mentions_dep_data(i),
        _ => false,
    }
}

/// Simple type inference over the expression language.
fn infer(e: &Expr, m: &StateMachine) -> Result<VarType, String> {
    use crate::expr::BinOp::*;
    match e {
        Expr::Lit(v) => Ok(v.ty()),
        Expr::Var(name) => m
            .vars
            .iter()
            .find(|v| v.name == *name)
            .map(|v| v.ty)
            .ok_or_else(|| format!("unknown variable `{name}`")),
        Expr::EventTime => Ok(VarType::Time),
        Expr::DepData => Ok(VarType::Float),
        Expr::EnergyLevel => Ok(VarType::Int),
        Expr::Not(i) => match infer(i, m)? {
            VarType::Bool => Ok(VarType::Bool),
            other => Err(format!("`!` applied to {}", other.keyword())),
        },
        Expr::Bin(op, l, r) => {
            let lt = infer(l, m)?;
            let rt = infer(r, m)?;
            let numeric = |t: VarType| matches!(t, VarType::Int | VarType::Time | VarType::Float);
            let comparable = lt == rt
                || (numeric(lt) && numeric(rt) && (lt == VarType::Float || rt == VarType::Float))
                || matches!(
                    (lt, rt),
                    (VarType::Int, VarType::Float) | (VarType::Float, VarType::Int)
                );
            match op {
                Add | Sub => {
                    if lt == rt && numeric(lt) {
                        Ok(lt)
                    } else {
                        Err(format!(
                            "arithmetic on {} and {}",
                            lt.keyword(),
                            rt.keyword()
                        ))
                    }
                }
                Lt | Le | Gt | Ge => {
                    if comparable && numeric(lt) && numeric(rt) {
                        Ok(VarType::Bool)
                    } else {
                        Err(format!(
                            "comparison of {} and {}",
                            lt.keyword(),
                            rt.keyword()
                        ))
                    }
                }
                Eq | Ne => {
                    if comparable || lt == rt {
                        Ok(VarType::Bool)
                    } else {
                        Err(format!("equality of {} and {}", lt.keyword(), rt.keyword()))
                    }
                }
                And | Or => {
                    if lt == VarType::Bool && rt == VarType::Bool {
                        Ok(VarType::Bool)
                    } else {
                        Err(format!(
                            "logical op on {} and {}",
                            lt.keyword(),
                            rt.keyword()
                        ))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_machine;

    fn machine(src: &str) -> StateMachine {
        parse_machine(src).unwrap()
    }

    #[test]
    fn generated_machines_validate_cleanly() {
        let mut b = artemis_core::app::AppGraphBuilder::new();
        let body = b.task("bodyTemp");
        let avg = b.task_with_var("calcAvg", "avgTemp");
        let heart = b.task("heartRate");
        let accel = b.task("accel");
        let classify = b.task("classify");
        let mic = b.task("micSense");
        let filter = b.task("filter");
        let send = b.task("send");
        b.path(&[body, avg, heart, send]);
        b.path(&[accel, classify, send]);
        b.path(&[mic, filter, send]);
        let app = b.build().unwrap();
        let set = artemis_spec::compile(artemis_spec::samples::FIGURE5, &app).unwrap();
        let suite = crate::lower::lower_set(&set, &app).unwrap();
        for m in suite.machines() {
            let issues = validate(m);
            assert!(
                issues.iter().all(|i| i.severity != Severity::Error),
                "machine {} has errors: {issues:?}",
                m.name
            );
        }
    }

    #[test]
    fn unknown_variable_in_guard_is_an_error() {
        let m = machine(
            "machine x task a persistent { state S initial; \
             on anyEvent from S to S if ghost > 0 { }; }",
        );
        let issues = validate(&m);
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Error && i.message.contains("ghost")));
        assert!(validate_strict(&m).is_err());
    }

    #[test]
    fn non_bool_guard_is_an_error() {
        let m = machine(
            "machine x task a persistent { var i: int = 0; state S initial; \
             on anyEvent from S to S if i + 1 { }; }",
        );
        assert!(validate(&m)
            .iter()
            .any(|i| i.message.contains("expected bool")));
    }

    #[test]
    fn dep_data_under_start_trigger_is_an_error() {
        let m = machine(
            "machine x task a persistent { state S initial; \
             on startTask(a) from S to S if depData > 1.0 { }; }",
        );
        assert!(validate(&m).iter().any(|i| i.message.contains("depData")));
    }

    #[test]
    fn shadowed_transition_is_a_warning() {
        let m = machine(
            "machine x task a persistent { state S initial; \
             on startTask(a) from S to S { }; \
             on startTask(a) from S to S { } fail skipTask; }",
        );
        let issues = validate(&m);
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Warning && i.message.contains("unreachable")));
        // Warnings do not fail strict validation.
        assert!(validate_strict(&m).is_ok());
    }

    #[test]
    fn equal_guard_shadowing_is_a_warning() {
        let m = machine(
            "machine x task a persistent { var i: int = 0; state S initial; \
             on startTask(a) from S to S if i > 2 { i := 0; }; \
             on startTask(a) from S to S if i > 2 { i := 1; } fail skipTask; }",
        );
        let issues = validate(&m);
        assert!(
            issues
                .iter()
                .any(|i| i.severity == Severity::Warning && i.message.contains("identical guard")),
            "{issues:?}"
        );
        // Distinct guards do not shadow.
        let m = machine(
            "machine x task a persistent { var i: int = 0; state S initial; \
             on startTask(a) from S to S if i > 2 { i := 0; }; \
             on startTask(a) from S to S if i > 3 { i := 1; }; }",
        );
        assert!(
            !validate(&m).iter().any(|i| i.message.contains("identical")),
            "different guards must not be flagged"
        );
    }

    #[test]
    fn write_only_variable_is_a_warning() {
        let m = machine(
            "machine x task a persistent { var dead: int = 0; var live: int = 0; \
             state S initial; \
             on startTask(a) from S to S if live < 5 { dead := 7; live := live + 1; }; }",
        );
        let issues = validate(&m);
        assert!(
            issues.iter().any(|i| i.severity == Severity::Warning
                && i.message.contains("`dead` is assigned but never read")),
            "{issues:?}"
        );
        assert!(
            !issues.iter().any(|i| i.message.contains("`live`")),
            "read variables must not be flagged: {issues:?}"
        );

        // A self-referencing increment reads the variable: not flagged.
        let m = machine(
            "machine x task a persistent { var n: int = 0; state S initial; \
             on startTask(a) from S to S { n := n + 1; }; }",
        );
        assert!(!validate(&m)
            .iter()
            .any(|i| i.message.contains("never read")),);
    }

    #[test]
    fn issue_converts_to_diagnostic() {
        let issue = Issue {
            severity: Severity::Error,
            machine: "m".into(),
            message: "boom".into(),
        };
        let d: artemis_spec::Diagnostic = issue.into();
        assert_eq!(d.severity, artemis_spec::Severity::Error);
        assert_eq!(d.pass, "validate");
        assert!(d.subject.contains('m'));
    }

    #[test]
    fn type_mismatched_assignment_is_an_error() {
        let m = machine(
            "machine x task a persistent { var f: bool = false; state S initial; \
             on anyEvent from S to S { f := t; }; }",
        );
        assert!(validate(&m)
            .iter()
            .any(|i| i.message.contains("assigning time")));
    }

    #[test]
    fn int_time_widening_is_accepted() {
        let m = machine(
            "machine x task a persistent { var w: time = 0t; state S initial; \
             on anyEvent from S to S { w := 0; }; }",
        );
        assert!(validate_strict(&m).is_ok());
    }

    #[test]
    fn duplicate_names_are_errors() {
        let m = machine(
            "machine x task a persistent { var i: int = 0; var i: int = 1; \
             state S initial; state S; }",
        );
        let issues = validate(&m);
        assert!(issues
            .iter()
            .any(|i| i.message.contains("duplicate variable")));
        assert!(issues.iter().any(|i| i.message.contains("duplicate state")));
    }

    #[test]
    fn issue_display() {
        let i = Issue {
            severity: Severity::Warning,
            machine: "m".into(),
            message: "something".into(),
        };
        assert_eq!(i.to_string(), "warning in machine `m`: something");
    }
}
