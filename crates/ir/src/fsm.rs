//! The finite-state-machine monitor model.
//!
//! Each property is compiled to one state machine (paper §3.3,
//! Figure 7): typed variables, named states, and transitions triggered
//! by `startTask`/`endTask`/`anyEvent`, optionally guarded, with
//! assignment/if-then-else bodies and an optional failure signal that
//! carries the corrective action.
//!
//! Machines are *self-contained*: triggers reference tasks by source
//! name, so IR text can be written, stored and exchanged independently
//! of a compiled application. The monitor engine resolves names against
//! the application graph when it loads a machine.

use core::fmt;

use artemis_core::property::OnFail;

use crate::expr::{Expr, Value, VarType};

/// How a transition matches tasks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TaskPat {
    /// Any task.
    Any,
    /// The named task only.
    Named(String),
}

impl TaskPat {
    /// Convenience constructor.
    pub fn named(name: &str) -> TaskPat {
        TaskPat::Named(name.to_string())
    }
}

/// What fires a transition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Trigger {
    /// A `startTask` event matching the pattern.
    Start(TaskPat),
    /// An `endTask` event matching the pattern.
    End(TaskPat),
    /// Any event at all (`anyEvent` in the paper's Figure 7).
    Any,
}

/// A statement in a transition body.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `var := expr`
    Assign(String, Expr),
    /// `if cond { … } else { … }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
}

/// The failure signal a transition may raise.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EmitFail {
    /// Recommended corrective action.
    pub action: OnFail,
    /// One-based path number for path-directed actions.
    pub path: Option<u32>,
}

/// One guarded transition.
#[derive(Clone, PartialEq, Debug)]
pub struct Transition {
    /// Source state index.
    pub from: u32,
    /// Destination state index.
    pub to: u32,
    /// Triggering event pattern.
    pub trigger: Trigger,
    /// Optional boolean guard.
    pub guard: Option<Expr>,
    /// Statements executed when the transition is taken.
    pub body: Vec<Stmt>,
    /// Optional failure signal.
    pub emit: Option<EmitFail>,
}

/// A variable declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Variable type.
    pub ty: VarType,
    /// Initial value (also the reset value).
    pub init: Value,
}

/// One monitor: a complete state machine.
///
/// # Examples
///
/// ```
/// use artemis_core::property::OnFail;
/// use artemis_ir::expr::{BinOp, Expr, Value, VarType};
/// use artemis_ir::fsm::{EmitFail, StateMachine, Stmt, TaskPat, Transition, Trigger};
///
/// // The maxTries machine of Figure 7, for max = 2.
/// let mut m = StateMachine::new("a_maxTries", "a");
/// m.add_var("i", VarType::Int, Value::Int(0));
/// let not_started = m.add_state("NotStarted");
/// let started = m.add_state("Started");
/// m.transitions.push(Transition {
///     from: not_started, to: started,
///     trigger: Trigger::Start(TaskPat::named("a")),
///     guard: None,
///     body: vec![Stmt::Assign("i".into(), Expr::int(1))],
///     emit: None,
/// });
/// assert_eq!(m.states.len(), 2);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct StateMachine {
    /// Unique monitor name, e.g. `send_MITD_0`.
    pub name: String,
    /// The task whose property block generated this machine.
    pub task: String,
    /// One-based number of the path the property governs, if any.
    pub path: Option<u32>,
    /// Whether a `restartPath` of the governing path re-initialises
    /// this machine (paper §3.3: "monitors linked to already initiated
    /// tasks within that path must be re-initialized").
    pub reset_on_path_restart: bool,
    /// Declared variables in slot order.
    pub vars: Vec<VarDecl>,
    /// State names; indices are the `from`/`to` of transitions.
    pub states: Vec<String>,
    /// Initial state index.
    pub initial: u32,
    /// Transitions in priority order (first match wins).
    pub transitions: Vec<Transition>,
}

impl StateMachine {
    /// Creates an empty machine bound to `task`.
    pub fn new(name: &str, task: &str) -> Self {
        StateMachine {
            name: name.to_string(),
            task: task.to_string(),
            path: None,
            reset_on_path_restart: false,
            vars: Vec::new(),
            states: Vec::new(),
            initial: 0,
            transitions: Vec::new(),
        }
    }

    /// Declares a variable; returns its slot index.
    pub fn add_var(&mut self, name: &str, ty: VarType, init: Value) -> usize {
        self.vars.push(VarDecl {
            name: name.to_string(),
            ty,
            init,
        });
        self.vars.len() - 1
    }

    /// Declares a state; returns its index.
    pub fn add_state(&mut self, name: &str) -> u32 {
        self.states.push(name.to_string());
        (self.states.len() - 1) as u32
    }

    /// Finds a variable slot by name.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v.name == name)
    }

    /// Finds a state index by name.
    pub fn state_index(&self, name: &str) -> Option<u32> {
        self.states.iter().position(|s| s == name).map(|i| i as u32)
    }

    /// The initial variable values, in slot order.
    pub fn initial_vars(&self) -> Vec<Value> {
        self.vars.iter().map(|v| v.init).collect()
    }

    /// Transitions leaving `state`, in priority order.
    pub fn transitions_from(&self, state: u32) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.from == state)
    }

    /// All task names this machine observes (its own plus `dpTask`s).
    pub fn observed_tasks(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for t in &self.transitions {
            let pat = match &t.trigger {
                Trigger::Start(p) | Trigger::End(p) => p,
                Trigger::Any => continue,
            };
            if let TaskPat::Named(n) = pat {
                if !names.contains(&n.as_str()) {
                    names.push(n);
                }
            }
        }
        names
    }
}

impl fmt::Display for StateMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "machine {} ({} states, {} vars, {} transitions)",
            self.name,
            self.states.len(),
            self.vars.len(),
            self.transitions.len()
        )
    }
}

/// A set of machines compiled from one specification.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MonitorSuite {
    machines: Vec<StateMachine>,
}

impl MonitorSuite {
    /// Creates an empty suite.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a machine.
    pub fn push(&mut self, m: StateMachine) {
        self.machines.push(m);
    }

    /// All machines, in declaration order.
    pub fn machines(&self) -> &[StateMachine] {
        &self.machines
    }

    /// Finds a machine by name.
    pub fn machine(&self, name: &str) -> Option<&StateMachine> {
        self.machines.iter().find(|m| m.name == name)
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Returns `true` if the suite holds no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }
}

impl IntoIterator for MonitorSuite {
    type Item = StateMachine;
    type IntoIter = std::vec::IntoIter<StateMachine>;

    fn into_iter(self) -> Self::IntoIter {
        self.machines.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_helpers_index_correctly() {
        let mut m = StateMachine::new("m", "a");
        assert_eq!(m.add_var("i", VarType::Int, Value::Int(0)), 0);
        assert_eq!(m.add_var("start", VarType::Time, Value::Time(0)), 1);
        assert_eq!(m.add_state("S0"), 0);
        assert_eq!(m.add_state("S1"), 1);
        assert_eq!(m.var_index("start"), Some(1));
        assert_eq!(m.var_index("nope"), None);
        assert_eq!(m.state_index("S1"), Some(1));
        assert_eq!(m.initial_vars(), vec![Value::Int(0), Value::Time(0)]);
    }

    #[test]
    fn observed_tasks_dedups() {
        let mut m = StateMachine::new("m", "a");
        m.add_state("S");
        for trigger in [
            Trigger::Start(TaskPat::named("a")),
            Trigger::End(TaskPat::named("b")),
            Trigger::Start(TaskPat::named("a")),
            Trigger::Any,
            Trigger::Start(TaskPat::Any),
        ] {
            m.transitions.push(Transition {
                from: 0,
                to: 0,
                trigger,
                guard: None,
                body: vec![],
                emit: None,
            });
        }
        assert_eq!(m.observed_tasks(), vec!["a", "b"]);
    }

    #[test]
    fn suite_lookup() {
        let mut suite = MonitorSuite::new();
        suite.push(StateMachine::new("x", "a"));
        suite.push(StateMachine::new("y", "b"));
        assert_eq!(suite.len(), 2);
        assert!(suite.machine("y").is_some());
        assert!(suite.machine("z").is_none());
        assert!(!suite.is_empty());
    }

    #[test]
    fn display_summarises() {
        let m = StateMachine::new("send_MITD_0", "send");
        assert!(m.to_string().contains("send_MITD_0"));
    }
}
