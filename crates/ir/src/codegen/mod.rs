//! Model-to-text transformations: IR machines → monitor source code.
//!
//! The paper's pipeline ends with a model-to-text transformation that
//! emits C monitors built on the ImmortalThreads macros (§4.2,
//! Figure 10). This module reproduces that step textually:
//!
//! - [`c::emit_c`] renders the suite as a single C translation unit in
//!   the paper's style — `__nv`-attributed state structs in FRAM, a
//!   `callMonitor` entry point, `_begin`/`_end` ImmortalThreads
//!   bracketing;
//! - [`rust::emit_rust`] renders an equivalent safe-Rust module, for
//!   projects embedding monitors in Rust firmware.
//!
//! The emitted text is golden-tested; it is documentation-grade output
//! (this reproduction *interprets* machines via `artemis-monitor`
//! rather than compiling the generated code — see DESIGN.md §4).

pub mod c;
pub mod rust;

pub use c::emit_c;
pub use rust::emit_rust;

/// Byte size of the generated C for a suite — the `.text` proxy used by
/// the Table 2 reproduction (see DESIGN.md §4).
pub fn c_text_size(suite: &crate::fsm::MonitorSuite) -> usize {
    emit_c(suite).len()
}

#[cfg(test)]
mod tests {
    use crate::lower::lower_set;

    fn suite() -> crate::fsm::MonitorSuite {
        let mut b = artemis_core::app::AppGraphBuilder::new();
        let a = b.task("accel");
        let s = b.task("send");
        b.path(&[a, s]);
        let app = b.build().unwrap();
        let set = artemis_spec::compile(
            "accel { maxTries: 10 onFail: skipPath; }\n\
             send { MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath; }",
            &app,
        )
        .unwrap();
        lower_set(&set, &app).unwrap()
    }

    #[test]
    fn c_text_size_is_plausible() {
        let size = super::c_text_size(&suite());
        assert!(size > 1_000, "C output suspiciously small: {size}");
        assert!(size < 100_000, "C output suspiciously large: {size}");
    }
}
