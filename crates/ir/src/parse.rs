//! Textual syntax for the intermediate language (parser).
//!
//! Reads the form emitted by [`crate::print`], so developers can author
//! monitors directly in the intermediate language when the property
//! language is not expressive enough (paper §3.3). See the grammar in
//! the printer's module docs.

use core::fmt;

use artemis_core::property::OnFail;

use crate::expr::{BinOp, Expr, Value, VarType};
use crate::fsm::{EmitFail, MonitorSuite, StateMachine, Stmt, TaskPat, Transition, Trigger};

/// A parse error with a byte offset into the IR text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrParseError {
    /// Byte offset of the offending token.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for IrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for IrParseError {}

/// Parses a suite of machines from IR text.
///
/// # Examples
///
/// ```
/// let suite = artemis_ir::parse::parse_suite(r#"
///     machine demo task a persistent {
///         var i: int = 0;
///         state S initial;
///         on startTask(a) from S to S if (i >= 2) { i := 0; } fail skipTask;
///         on startTask(a) from S to S { i := (i + 1); };
///     }
/// "#).unwrap();
/// assert_eq!(suite.machines()[0].transitions.len(), 2);
/// ```
pub fn parse_suite(text: &str) -> Result<MonitorSuite, IrParseError> {
    let mut p = IrParser::new(text)?;
    let mut suite = MonitorSuite::new();
    while !p.at_eof() {
        suite.push(p.machine()?);
    }
    Ok(suite)
}

/// Parses a single machine.
pub fn parse_machine(text: &str) -> Result<StateMachine, IrParseError> {
    let mut p = IrParser::new(text)?;
    let m = p.machine()?;
    if !p.at_eof() {
        return Err(p.err("trailing input after machine"));
    }
    Ok(m)
}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Time(u64),
    Float(f64),
    Sym(&'static str),
    Eof,
}

struct IrParser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

fn lex(text: &str) -> Result<Vec<(Tok, usize)>, IrParseError> {
    let b = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '{' | '}' | '(' | ')' | ';' | '*' => {
                let sym = match c {
                    '{' => "{",
                    '}' => "}",
                    '(' => "(",
                    ')' => ")",
                    ';' => ";",
                    _ => "*",
                };
                toks.push((Tok::Sym(sym), i));
                i += 1;
            }
            ':' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Sym(":="), i));
                    i += 2;
                } else {
                    toks.push((Tok::Sym(":"), i));
                    i += 1;
                }
            }
            '=' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Sym("=="), i));
                    i += 2;
                } else {
                    toks.push((Tok::Sym("="), i));
                    i += 1;
                }
            }
            '!' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Sym("!="), i));
                    i += 2;
                } else {
                    toks.push((Tok::Sym("!"), i));
                    i += 1;
                }
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Sym("<="), i));
                    i += 2;
                } else {
                    toks.push((Tok::Sym("<"), i));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Sym(">="), i));
                    i += 2;
                } else {
                    toks.push((Tok::Sym(">"), i));
                    i += 1;
                }
            }
            '&' if b.get(i + 1) == Some(&b'&') => {
                toks.push((Tok::Sym("&&"), i));
                i += 2;
            }
            '|' if b.get(i + 1) == Some(&b'|') => {
                toks.push((Tok::Sym("||"), i));
                i += 2;
            }
            '+' => {
                toks.push((Tok::Sym("+"), i));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Sym("-"), i));
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v: f64 = text[start..i].parse().map_err(|_| IrParseError {
                        at: start,
                        message: "bad float".into(),
                    })?;
                    toks.push((Tok::Float(v), start));
                } else if i < b.len() && b[i] == b't' {
                    let v: u64 = text[start..i].parse().map_err(|_| IrParseError {
                        at: start,
                        message: "time literal out of range".into(),
                    })?;
                    i += 1;
                    toks.push((Tok::Time(v), start));
                } else {
                    let v: i64 = text[start..i].parse().map_err(|_| IrParseError {
                        at: start,
                        message: "integer out of range".into(),
                    })?;
                    toks.push((Tok::Int(v), start));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(text[start..i].to_string()), start));
            }
            other => {
                return Err(IrParseError {
                    at: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    toks.push((Tok::Eof, text.len()));
    Ok(toks)
}

impl IrParser {
    fn new(text: &str) -> Result<Self, IrParseError> {
        Ok(IrParser {
            toks: lex(text)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn at(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        *self.peek() == Tok::Eof
    }

    fn err(&self, msg: impl Into<String>) -> IrParseError {
        IrParseError {
            at: self.at(),
            message: msg.into(),
        }
    }

    fn sym(&mut self, s: &'static str) -> Result<(), IrParseError> {
        if *self.peek() == Tok::Sym(s) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn eat_sym(&mut self, s: &'static str) -> bool {
        if *self.peek() == Tok::Sym(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, IrParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => Err(self.err("expected an identifier")),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), IrParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            _ => Err(self.err(format!("expected keyword `{kw}`"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                true
            }
            _ => false,
        }
    }

    fn int(&mut self) -> Result<i64, IrParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(v)
            }
            _ => Err(self.err("expected an integer")),
        }
    }

    fn machine(&mut self) -> Result<StateMachine, IrParseError> {
        self.keyword("machine")?;
        let name = self.ident()?;
        self.keyword("task")?;
        let task = self.ident()?;
        let mut m = StateMachine::new(&name, &task);
        if self.eat_keyword("path") {
            m.path = Some(u32::try_from(self.int()?).map_err(|_| self.err("bad path number"))?);
        }
        if self.eat_keyword("resettable") {
            m.reset_on_path_restart = true;
        } else if self.eat_keyword("persistent") {
            m.reset_on_path_restart = false;
        } else {
            return Err(self.err("expected `resettable` or `persistent`"));
        }
        self.sym("{")?;

        let mut saw_initial = false;
        loop {
            if self.eat_sym("}") {
                break;
            }
            if self.eat_keyword("var") {
                let vname = self.ident()?;
                self.sym(":")?;
                let ty = self.var_type()?;
                self.sym("=")?;
                let init = self.value(ty)?;
                self.sym(";")?;
                m.add_var(&vname, ty, init);
            } else if self.eat_keyword("state") {
                let sname = self.ident()?;
                let idx = m.add_state(&sname);
                if self.eat_keyword("initial") {
                    if saw_initial {
                        return Err(self.err("multiple `initial` states"));
                    }
                    m.initial = idx;
                    saw_initial = true;
                }
                self.sym(";")?;
            } else if self.eat_keyword("on") {
                let t = self.transition(&m)?;
                m.transitions.push(t);
            } else {
                return Err(self.err("expected `var`, `state`, `on` or `}`"));
            }
        }
        if m.states.is_empty() {
            return Err(self.err("machine declares no states"));
        }
        if !saw_initial {
            m.initial = 0;
        }
        Ok(m)
    }

    fn var_type(&mut self) -> Result<VarType, IrParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "int" => Ok(VarType::Int),
            "bool" => Ok(VarType::Bool),
            "time" => Ok(VarType::Time),
            "float" => Ok(VarType::Float),
            other => Err(self.err(format!("unknown type `{other}`"))),
        }
    }

    fn value(&mut self, ty: VarType) -> Result<Value, IrParseError> {
        let neg = self.eat_sym("-");
        match (self.peek().clone(), ty) {
            (Tok::Int(v), VarType::Int) => {
                self.bump();
                Ok(Value::Int(if neg { -v } else { v }))
            }
            (Tok::Int(v), VarType::Time) => {
                self.bump();
                Ok(Value::Time(v as u64))
            }
            (Tok::Time(v), VarType::Time) => {
                self.bump();
                Ok(Value::Time(v))
            }
            (Tok::Float(v), VarType::Float) => {
                self.bump();
                Ok(Value::Float(if neg { -v } else { v }))
            }
            (Tok::Int(v), VarType::Float) => {
                self.bump();
                let f = v as f64;
                Ok(Value::Float(if neg { -f } else { f }))
            }
            (Tok::Ident(s), VarType::Bool) if s == "true" || s == "false" => {
                self.bump();
                Ok(Value::Bool(s == "true"))
            }
            _ => Err(self.err(format!("expected a {} literal", ty.keyword()))),
        }
    }

    fn transition(&mut self, m: &StateMachine) -> Result<Transition, IrParseError> {
        let trigger = self.trigger()?;
        self.keyword("from")?;
        let from_name = self.ident()?;
        let from = m
            .state_index(&from_name)
            .ok_or_else(|| self.err(format!("unknown state `{from_name}`")))?;
        self.keyword("to")?;
        let to_name = self.ident()?;
        let to = m
            .state_index(&to_name)
            .ok_or_else(|| self.err(format!("unknown state `{to_name}`")))?;
        let guard = if self.eat_keyword("if") {
            Some(self.expr()?)
        } else {
            None
        };
        self.sym("{")?;
        let mut body = Vec::new();
        while !self.eat_sym("}") {
            body.push(self.stmt()?);
        }
        let emit = if self.eat_keyword("fail") {
            let action = self.action()?;
            let path = if self.eat_keyword("path") {
                Some(u32::try_from(self.int()?).map_err(|_| self.err("bad path number"))?)
            } else {
                None
            };
            Some(EmitFail { action, path })
        } else {
            None
        };
        self.sym(";")?;
        Ok(Transition {
            from,
            to,
            trigger,
            guard,
            body,
            emit,
        })
    }

    fn trigger(&mut self) -> Result<Trigger, IrParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "anyEvent" => Ok(Trigger::Any),
            "startTask" | "endTask" => {
                self.sym("(")?;
                let pat = if self.eat_sym("*") {
                    TaskPat::Any
                } else {
                    TaskPat::Named(self.ident()?)
                };
                self.sym(")")?;
                Ok(if name == "startTask" {
                    Trigger::Start(pat)
                } else {
                    Trigger::End(pat)
                })
            }
            other => Err(self.err(format!("unknown trigger `{other}`"))),
        }
    }

    fn action(&mut self) -> Result<OnFail, IrParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "restartPath" => Ok(OnFail::RestartPath),
            "skipPath" => Ok(OnFail::SkipPath),
            "restartTask" => Ok(OnFail::RestartTask),
            "skipTask" => Ok(OnFail::SkipTask),
            "completePath" => Ok(OnFail::CompletePath),
            other => Err(self.err(format!("unknown action `{other}`"))),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, IrParseError> {
        if self.eat_keyword("if") {
            let cond = self.expr()?;
            self.sym("{")?;
            let mut then_b = Vec::new();
            while !self.eat_sym("}") {
                then_b.push(self.stmt()?);
            }
            let mut else_b = Vec::new();
            if self.eat_keyword("else") {
                self.sym("{")?;
                while !self.eat_sym("}") {
                    else_b.push(self.stmt()?);
                }
            }
            return Ok(Stmt::If(cond, then_b, else_b));
        }
        let name = self.ident()?;
        self.sym(":=")?;
        let e = self.expr()?;
        self.sym(";")?;
        Ok(Stmt::Assign(name, e))
    }

    /// Precedence-climbing expression parser:
    /// `||` < `&&` < comparisons < `+`/`-` < unary `!` < primary.
    fn expr(&mut self) -> Result<Expr, IrParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, IrParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_sym("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, IrParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_sym("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, IrParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Sym("<") => BinOp::Lt,
            Tok::Sym("<=") => BinOp::Le,
            Tok::Sym(">") => BinOp::Gt,
            Tok::Sym(">=") => BinOp::Ge,
            Tok::Sym("==") => BinOp::Eq,
            Tok::Sym("!=") => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, IrParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("+") => BinOp::Add,
                Tok::Sym("-") => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, IrParseError> {
        if self.eat_sym("!") {
            // `!(e)` — the printer always parenthesises the operand.
            let inner = self.unary_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, IrParseError> {
        if self.eat_sym("(") {
            let e = self.expr()?;
            self.sym(")")?;
            return Ok(e);
        }
        if self.eat_sym("-") {
            // Negative literals.
            return match self.peek().clone() {
                Tok::Int(v) => {
                    self.bump();
                    Ok(Expr::int(-v))
                }
                Tok::Float(v) => {
                    self.bump();
                    Ok(Expr::float(-v))
                }
                _ => Err(self.err("expected a number after `-`")),
            };
        }
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::int(v))
            }
            Tok::Time(v) => {
                self.bump();
                Ok(Expr::time(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::float(v))
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(match name.as_str() {
                    "t" => Expr::EventTime,
                    "depData" => Expr::DepData,
                    "energy" => Expr::EnergyLevel,
                    "true" => Expr::Lit(Value::Bool(true)),
                    "false" => Expr::Lit(Value::Bool(false)),
                    _ => Expr::Var(name),
                })
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::{print_machine, print_suite};

    #[test]
    fn round_trip_every_lowered_machine() {
        // Build the Figure 6 graph, lower Figure 5 plus extras covering
        // every property kind, and round-trip each machine.
        let mut b = artemis_core::app::AppGraphBuilder::new();
        let body = b.task("bodyTemp");
        let avg = b.task_with_var("calcAvg", "avgTemp");
        let heart = b.task("heartRate");
        let accel = b.task("accel");
        let classify = b.task("classify");
        let mic = b.task("micSense");
        let filter = b.task("filter");
        let send = b.task("send");
        b.path(&[body, avg, heart, send]);
        b.path(&[accel, classify, send]);
        b.path(&[mic, filter, send]);
        let app = b.build().unwrap();

        let extra = "accel { period: 10s onFail: restartTask maxAttempt: 2 onFail: skipPath; \
                     energy: 300uJ onFail: skipTask; }";
        let spec = format!("{}\n{}", artemis_spec::samples::FIGURE5, extra);
        let set = artemis_spec::compile(&spec, &app).unwrap();
        let suite = crate::lower::lower_set(&set, &app).unwrap();
        assert_eq!(suite.len(), 10);

        for m in suite.machines() {
            let text = print_machine(m);
            let parsed =
                parse_machine(&text).unwrap_or_else(|e| panic!("machine {}: {e}\n{text}", m.name));
            assert_eq!(&parsed, m, "round-trip mismatch for {}\n{text}", m.name);
        }

        // And the whole-suite form.
        let text = print_suite(&suite);
        let parsed = parse_suite(&text).unwrap();
        assert_eq!(parsed.machines(), suite.machines());
    }

    #[test]
    fn hand_written_machine_parses() {
        let m = parse_machine(
            r#"
            // A custom watchdog written directly in the IR.
            machine watchdog task send path 2 persistent {
                var count: int = 0;
                var armed: bool = false;
                state Waiting initial;
                state Armed;
                on startTask(send) from Waiting to Armed { armed := true; count := (count + 1); };
                on endTask(send) from Armed to Waiting if !(armed) { count := 0; };
                on anyEvent from Armed to Waiting if (count >= 3) { count := 0; } fail skipPath path 2;
            }
        "#,
        )
        .unwrap();
        assert_eq!(m.name, "watchdog");
        assert_eq!(m.vars.len(), 2);
        assert_eq!(m.states, vec!["Waiting", "Armed"]);
        assert_eq!(m.transitions.len(), 3);
        assert_eq!(
            m.transitions[2].emit,
            Some(EmitFail {
                action: OnFail::SkipPath,
                path: Some(2)
            })
        );
    }

    #[test]
    fn operator_precedence_without_parens() {
        let m = parse_machine(
            r#"
            machine p task a persistent {
                var x: int = 0;
                state S initial;
                on anyEvent from S to S if x + 1 < 3 && x >= 0 || false { x := x + 1; };
            }
        "#,
        )
        .unwrap();
        // ((x + 1) < 3 && (x >= 0)) || false
        let g = m.transitions[0].guard.as_ref().unwrap();
        match g {
            Expr::Bin(BinOp::Or, lhs, _) => match lhs.as_ref() {
                Expr::Bin(BinOp::And, l2, _) => {
                    assert!(matches!(l2.as_ref(), Expr::Bin(BinOp::Lt, _, _)));
                }
                other => panic!("expected And, got {other:?}"),
            },
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_machine("machine x task").unwrap_err();
        assert!(err.message.contains("identifier"));
        let err = parse_machine("machine x task a wat {}").unwrap_err();
        assert!(err.message.contains("resettable"));
        let err = parse_machine(
            "machine x task a persistent { state S initial; on bogus from S to S { }; }",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown trigger"));
        let err = parse_machine(
            "machine x task a persistent { state S initial; on anyEvent from S to Z { }; }",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown state `Z`"));
        let err = parse_machine("machine x task a persistent { }").unwrap_err();
        assert!(err.message.contains("no states"));
    }

    #[test]
    fn duplicate_initial_is_rejected() {
        let err =
            parse_machine("machine x task a persistent { state S initial; state R initial; }")
                .unwrap_err();
        assert!(err.message.contains("multiple `initial`"));
    }

    #[test]
    fn var_initial_values_parse_by_declared_type() {
        let m = parse_machine(
            r#"machine x task a persistent {
                var a: int = -3;
                var b: time = 100t;
                var c: time = 100;
                var d: float = 1.5;
                var e: float = 2;
                var f: bool = true;
                state S initial;
            }"#,
        )
        .unwrap();
        assert_eq!(m.vars[0].init, Value::Int(-3));
        assert_eq!(m.vars[1].init, Value::Time(100));
        assert_eq!(m.vars[2].init, Value::Time(100));
        assert_eq!(m.vars[3].init, Value::Float(1.5));
        assert_eq!(m.vars[4].init, Value::Float(2.0));
        assert_eq!(m.vars[5].init, Value::Bool(true));
    }
}
