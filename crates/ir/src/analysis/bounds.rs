//! Pass 2: static worst-case FRAM resource bounds.
//!
//! Walks the routing index and dispatch tables to bound, per event key
//! `(kind, task)`, what one delivered event can cost the engine's
//! routed compiled path (the default execution mode): FRAM read/write
//! operations and the largest single journal commit in bytes. The
//! bounds are compared against the journal capacity at install time —
//! a suite whose worst-case commit cannot fit is rejected *before* it
//! allocates, instead of faulting with `JournalOverflow` mid-run — and
//! against measured dispatch-benchmark numbers in `artemis-bench`
//! (static must dominate measured).
//!
//! # Cost model
//!
//! The constants below mirror `artemis-monitor`'s engine and
//! `intermittent-sim`'s journal byte-for-byte; they are pinned by tests
//! in those crates (`bounds_model_matches_engine` in the monitor crate,
//! the dominance assertion in the dispatch benchmark). The sim bills
//! one FRAM op per `read_raw`/`write_raw` call. Two commit formats
//! exist:
//!
//! - an **entry-list** commit of `E` entries costs `2E+1` reads and
//!   `3E+3` writes (stage each entry, write the count, set the flag,
//!   re-read and apply each entry, clear the flag);
//! - a **sparse** commit of `k` sub-writes costs `0` reads and `k+3`
//!   writes (stage the whole record in one write, set the flag, apply
//!   each sub-write from RAM, clear the flag).
//!
//! Per delivered event (routed, compiled, delta commits enabled — the
//! default execution mode), using each key's static [`AccessSet`]:
//!
//! - **arming**: recovery-flag read + sequence read, then one 5-sub-
//!   write sparse commit (event, seq, verdict count, worklist, done
//!   bitmap) — 2 reads, 8 writes, `87 + 2·n` record bytes for `n`
//!   armed machines;
//! - **worklist setup**: count + bitmap + items + event reads — 4 reads
//!   (2 when the worklist is empty, as the items and event are never
//!   read);
//! - **per armed machine**, worst case (effectful step):
//!   - *delta* (the key's access set stays under the ¾-block degrade
//!     threshold): covering-span read + sparse commit of state + every
//!     write-set slot + done bit — 1 read, `|W| + 5` writes;
//!   - *degraded* (`whole_block`): block read + 2-entry commit (block,
//!     done bit) — 6 reads, 9 writes;
//!   - if any dispatched transition emits: + verdict-count read + the
//!     verdict cell and count sub-writes/entries;
//! - **verdict readback**: count read + one read per possible emitter.
//!
//! Commit-byte bounds take the **max of both formats** per key, so a
//! capacity derived here stays safe when delta commits are disabled
//! (`DeltaMode::Disabled`) or the engine degrades to full scan.
//!
//! The static bound dominates the dynamic cost because arming-time
//! `Path:` filtering only ever *shrinks* the worklist below the routing
//! index's interest list, effectless steps complete with a single
//! plain write instead of a commit, and a step's dynamic write set is
//! a subset of the static one.
//!
//! # Cache-aware bounds
//!
//! With the engine's volatile shadow cache enabled (`CacheMode::
//! Enabled`, the default on the routed compiled path), every *input*
//! read of a steady-state delivery — recovery flag, sequence, armed
//! worklist, event, machine spans, verdict log — is served from RAM.
//! [`EventCost::cached_reads`] bounds what remains: only the
//! entry-list commit protocol reads of degraded (whole-block)
//! machines, which are journal traffic, not cacheable input. For a key
//! whose armed machines all commit sparsely the warm read bound is
//! exactly `0`. [`EventCost::cold_extra_reads`] bounds the refill cost
//! of the first delivery after a reboot (flag + seq + one whole-block
//! fill per armed machine); a cold cached delivery never reads more
//! than the uncached pattern, so [`EventCost::reads`] stays a valid
//! bound in *both* cache modes. The same split exists on the batch
//! path ([`BatchBounds::cached_reads`] — always `0`, every batch
//! commit is sparse — and [`BatchBounds::cold_extra_reads`]). Write
//! bounds are identical in both modes: the cache is write-through and
//! never changes what the engine commits.

use artemis_core::event::EventKind;
use artemis_spec::Diagnostic;

use crate::compile::{CompiledMachine, CompiledSuite};

/// Journal entry header bytes (`addr: u32` + `len: u16`).
const ENTRY_HEADER: usize = 6;
/// Encoded size of one monitor variable (`NvValue`: 1-byte tag + u64).
const NV_VALUE_BYTES: usize = 9;
/// Encoded size of the pending-event cell (`EncodedEvent`).
const ENCODED_EVENT_BYTES: usize = 31;
/// State word prefix of a machine's FRAM block.
const STATE_WORD_BYTES: usize = 4;
/// Sequence cell / done bitmap (`u64`).
const U64_BYTES: usize = 8;
/// Verdict count (`u32`).
const U32_BYTES: usize = 4;
/// One verdict cell: `(u32, (u8, u32))`.
const VERDICT_BYTES: usize = 9;
/// Recovery flag (`bool`).
const FLAG_BYTES: usize = 1;

/// Engine cycle charges, mirroring `artemis-monitor`'s constants of the
/// same names (pinned against the engine by the monitor crate's
/// `bounds_model_matches_engine` energy tests).
pub const ROUTING_LOOKUP_CYCLES: u64 = 12;
/// Cycles per armed machine entered on the compiled dispatch path.
pub const COMPILED_DISPATCH_CYCLES: u64 = 10;
/// Cycles per dispatched transition evaluated.
pub const STEP_PER_TRANSITION_CYCLES: u64 = 12;

/// FRAM ops of an entry-list journal commit with `entries` entries.
const fn commit_reads(entries: usize) -> usize {
    2 * entries + 1
}
const fn commit_writes(entries: usize) -> usize {
    3 * entries + 3
}

/// Energy-billed write accesses of an entry-list commit: staging an
/// entry is one billed base (header + payload in one access) though it
/// counts as two op-counter writes.
const fn commit_billed_writes(entries: usize) -> usize {
    2 * entries + 3
}

/// FRAM writes of a sparse journal commit with `k` sub-writes (stage,
/// flag, `k` applies, clear); sparse commits perform no reads.
const fn sparse_commit_writes(k: usize) -> usize {
    k + 3
}

/// Journal payload bytes of one entry carrying `data` bytes. Sub-write
/// slots of a sparse record have the same header, plus the record's
/// leading `count: u16` accounted separately ([`sparse_record_bytes`]).
const fn entry_bytes(data: usize) -> usize {
    ENTRY_HEADER + data
}

/// Journal payload bytes of a sparse record whose sub-write entries
/// total `entries_bytes` (headers included).
const fn sparse_record_bytes(entries_bytes: usize) -> usize {
    2 + entries_bytes
}

/// FRAM bytes of a machine block with `vars` variable slots.
const fn block_bytes(vars: usize) -> usize {
    STATE_WORD_BYTES + NV_VALUE_BYTES * vars
}

/// Journal bytes of a `u16` list entry with `n` items.
const fn u16_list_entry_bytes(n: usize) -> usize {
    entry_bytes(2 + 2 * n)
}

/// Which FRAM machine-image layout to model. Must match the engine's
/// `LayoutMode`: the byte bounds are pinned exactly tight against the
/// engine per layout (the op bounds are layout-independent — packing
/// changes how many bytes each access moves, never how many accesses
/// the engine makes).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LayoutKind {
    /// Width-packed blocks ([`crate::layout::MachineLayout::packed`],
    /// the engine default): narrow state word, interval-narrowed `Int`
    /// slots, untagged payloads, bitmap done flags.
    #[default]
    Packed,
    /// The legacy tagged geometry: 4-byte state word + 9 bytes per
    /// slot, `u64` done cell.
    Tagged,
}

impl LayoutKind {
    /// Full block image bytes of one machine.
    fn machine_block_bytes(self, m: &CompiledMachine) -> usize {
        match self {
            LayoutKind::Packed => m.layout().block_len,
            LayoutKind::Tagged => block_bytes(m.var_count),
        }
    }

    /// State-word bytes of one machine.
    fn state_bytes(self, m: &CompiledMachine) -> usize {
        match self {
            LayoutKind::Packed => m.layout().state_bytes,
            LayoutKind::Tagged => STATE_WORD_BYTES,
        }
    }

    /// Bytes of the block prefix covering the state word and slots
    /// `0..=max_slot` (the delta path's load span).
    fn span_bytes(self, m: &CompiledMachine, max_slot: Option<u16>) -> usize {
        match self {
            LayoutKind::Packed => m.layout().span(max_slot),
            LayoutKind::Tagged => {
                STATE_WORD_BYTES + NV_VALUE_BYTES * max_slot.map_or(0, |s| s as usize + 1)
            }
        }
    }

    /// Encoded bytes of one variable slot.
    fn slot_bytes(self, m: &CompiledMachine, slot: u16) -> usize {
        match self {
            LayoutKind::Packed => m.layout().slots[slot as usize].enc.width(),
            LayoutKind::Tagged => NV_VALUE_BYTES,
        }
    }

    /// Bytes of the per-engine completion bitmap for `machines`
    /// installed machines.
    fn done_bytes(self, machines: usize) -> usize {
        match self {
            LayoutKind::Packed => machines.div_ceil(8).max(1),
            LayoutKind::Tagged => U64_BYTES,
        }
    }
}

/// Worst-case cost of delivering one event under a given key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EventCost {
    /// Event kind of the key.
    pub kind: EventKind,
    /// Dense task id, or `None` for the out-of-graph wildcard key.
    pub task: Option<u32>,
    /// Machines the routing index arms for this key.
    pub machines: usize,
    /// Of those, machines with at least one dispatched emitting
    /// transition (they pay the verdict-logging surcharge).
    pub emitters: usize,
    /// Armed machines committing via sparse delta records under this
    /// key (their access set stays below the ¾-block threshold).
    pub delta_machines: usize,
    /// Armed machines auto-degraded to whole-block commits.
    pub degraded_machines: usize,
    /// Worst-case FRAM read operations.
    pub reads: usize,
    /// Worst-case FRAM write operations.
    pub writes: usize,
    /// Worst-case FRAM read operations with the volatile shadow cache
    /// warm (`CacheMode::Enabled`, steady state): every input read is
    /// served from RAM, so only the entry-list journal *protocol*
    /// reads of degraded (whole-block) machines remain — `0` for keys
    /// whose armed machines all commit sparsely.
    pub cached_reads: usize,
    /// Extra FRAM reads the first delivery after a reboot pays on top
    /// of [`EventCost::cached_reads`] to refill the shadow: the
    /// recovery flag, the sequence number, and one whole-block fill
    /// per armed machine (the fill is one op, same as the uncached
    /// span read). Any post-reboot delivery — including resuming an
    /// event armed before the crash — is also bounded by the uncached
    /// [`EventCost::reads`], because a cold cached delivery never reads
    /// more than the uncached pattern.
    pub cold_extra_reads: usize,
    /// Largest single journal commit, in payload bytes.
    pub commit_bytes: usize,
    /// Worst-case FRAM bytes read (per-byte traffic priced on top of
    /// the per-op base by the sim's cost model).
    pub read_bytes: usize,
    /// Worst-case FRAM bytes read with the shadow cache warm — only
    /// the entry-list commit protocol re-reads of degraded machines.
    pub cached_read_bytes: usize,
    /// Worst-case FRAM bytes written (identical in both cache modes:
    /// the shadow is write-through).
    pub write_bytes: usize,
    /// Worst-case FRAM write *accesses as billed by the energy meter*.
    /// Differs from [`EventCost::writes`] only on entry-list commits:
    /// staging one entry issues two op-counter writes (header, then
    /// payload) but is billed as a single base-plus-bytes access, so a
    /// degraded machine's `E`-entry commit bills `2E+3` accesses
    /// against `3E+3` counted ops. Sparse commits bill 1:1.
    pub billed_writes: usize,
    /// Worst-case engine CPU cycles charged for the delivery (routing
    /// lookup + per-machine dispatch + per-transition stepping).
    pub cycles: u64,
    /// FRAM write ops of the arming commit alone — a floor *every*
    /// delivered event pays before any machine steps, in either cache
    /// mode (the cache is write-through and never absorbs writes).
    pub arming_writes: usize,
    /// FRAM bytes the arming commit alone writes.
    pub arming_write_bytes: usize,
}

impl EventCost {
    /// Total FRAM operations (reads + writes).
    pub fn ops(&self) -> usize {
        self.reads + self.writes
    }

    /// Total FRAM operations with the shadow cache warm.
    pub fn cached_ops(&self) -> usize {
        self.cached_reads + self.writes
    }
}

/// Static per-event and install-time resource bounds for a suite.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SuiteBounds {
    /// Every `(kind, task)` key of the application graph plus the two
    /// wildcard keys.
    pub per_key: Vec<EventCost>,
    /// Largest single journal commit any event can stage, in bytes.
    pub worst_commit_bytes: usize,
    /// Bytes of the whole-suite reset commit (`resetMonitor` re-images
    /// every machine block in one transaction).
    pub reset_commit_bytes: usize,
}

impl SuiteBounds {
    /// The most expensive event key by total FRAM ops, if any machines
    /// are installed.
    pub fn worst_event(&self) -> Option<&EventCost> {
        self.per_key.iter().max_by_key(|c| c.ops())
    }
}

/// Computes the static resource bounds of a compiled suite under the
/// engine's default packed layout. See [`suite_bounds_for`].
pub fn suite_bounds(compiled: &CompiledSuite) -> SuiteBounds {
    suite_bounds_for(compiled, LayoutKind::default())
}

/// Computes the static resource bounds of a compiled suite by walking
/// its routing index and dispatch tables, modelling machine images
/// under `layout`.
pub fn suite_bounds_for(compiled: &CompiledSuite, layout: LayoutKind) -> SuiteBounds {
    let machines = compiled.machines();
    let task_count = compiled.task_count();
    let done_b = layout.done_bytes(machines.len());

    let mut per_key = Vec::with_capacity(2 * (task_count + 1));
    for kind in [EventKind::StartTask, EventKind::EndTask] {
        for key_task in 0..=task_count {
            // `task_count` stands in for any out-of-graph id: the
            // routing index resolves it to the wildcard set.
            let (task, probe) = if key_task == task_count {
                (None, u32::MAX)
            } else {
                (Some(key_task as u32), key_task as u32)
            };
            let armed = compiled.routing().interested(kind, probe);

            // Arming: recovery flag + seq reads, then one 5-sub-write
            // sparse commit. The byte bound covers both formats (the
            // sparse record is the entry-list image + its count word).
            let mut reads = 2;
            let mut read_bytes = FLAG_BYTES + U64_BYTES;
            let mut writes = sparse_commit_writes(5);
            let arming_entry_bytes = entry_bytes(ENCODED_EVENT_BYTES)
                + entry_bytes(U64_BYTES)
                + entry_bytes(U32_BYTES)
                + u16_list_entry_bytes(armed.len())
                + entry_bytes(done_b);
            // A sparse commit writes the staged record, the flag, each
            // sub-write's payload, and the flag clear.
            let arming_data_bytes =
                ENCODED_EVENT_BYTES + U64_BYTES + U32_BYTES + (2 + 2 * armed.len()) + done_b;
            let arming_write_bytes =
                sparse_record_bytes(arming_entry_bytes) + arming_data_bytes + 2 * FLAG_BYTES;
            let mut write_bytes = arming_write_bytes;
            let mut commit = sparse_record_bytes(arming_entry_bytes);
            reads += if armed.is_empty() { 2 } else { 4 };
            read_bytes += if armed.is_empty() {
                2 + done_b
            } else {
                2 + done_b + 2 * armed.len() + ENCODED_EVENT_BYTES
            };
            let mut cycles = ROUTING_LOOKUP_CYCLES;
            let mut billed_writes = sparse_commit_writes(5);

            let mut emitters = 0;
            let mut delta_machines = 0;
            let mut degraded_machines = 0;
            let mut cached_reads = 0;
            let mut cached_read_bytes = 0;
            for &mi in armed {
                let m = &machines[mi as usize];
                let emits = m
                    .transition_list(kind, probe)
                    .iter()
                    .any(|&ti| m.transitions[ti as usize].emit.is_some());
                let access = m.access(kind, probe);
                // The engine bills the key's static step ceiling (the
                // cycle-priced worst path through its dispatched
                // transitions) — identical table, so the bound is exact.
                cycles += COMPILED_DISPATCH_CYCLES + m.step_cost(kind, probe).cycles;
                let block_b = layout.machine_block_bytes(m);

                // Whole-block entry-list bytes: always part of the byte
                // bound so a delta-disabled engine still fits.
                let mut block_step_bytes = entry_bytes(block_b) + entry_bytes(done_b);
                if emits {
                    block_step_bytes += entry_bytes(VERDICT_BYTES) + entry_bytes(U32_BYTES);
                    emitters += 1;
                }

                if access.whole_block {
                    degraded_machines += 1;
                    let step_entries = if emits { 4 } else { 2 };
                    // Entry payloads: block image + done bit (+ verdict
                    // cell and count).
                    let mut entry_data = block_b + done_b;
                    if emits {
                        entry_data += VERDICT_BYTES + U32_BYTES;
                    }
                    reads += 1 + commit_reads(step_entries) + usize::from(emits);
                    // Block load + protocol re-reads (count word, each
                    // entry header and payload) + verdict count.
                    let protocol_bytes = 2 + ENTRY_HEADER * step_entries + entry_data;
                    read_bytes += block_b + protocol_bytes + if emits { U32_BYTES } else { 0 };
                    writes += commit_writes(step_entries);
                    billed_writes += commit_billed_writes(step_entries);
                    // Stage each entry, count word, flag, apply each
                    // payload, flag clear.
                    write_bytes += (ENTRY_HEADER * step_entries + entry_data)
                        + 2
                        + FLAG_BYTES
                        + entry_data
                        + FLAG_BYTES;
                    // The shadow serves the block load and the verdict
                    // count, but the entry-list commit's re-read-and-
                    // apply protocol reads are journal traffic the
                    // cache cannot touch.
                    cached_reads += commit_reads(step_entries);
                    cached_read_bytes += protocol_bytes;
                    commit = commit.max(block_step_bytes);
                } else {
                    delta_machines += 1;
                    // Covering-span read, verdict-count read if emitting.
                    reads += 1 + usize::from(emits);
                    let span_bytes = layout.span_bytes(m, access.max_touched_slot());
                    read_bytes += span_bytes + if emits { U32_BYTES } else { 0 };
                    // Sub-writes: state word + every write-set slot +
                    // done bit (+ verdict cell and count). The diff
                    // path (`DiffMode::Auto` + warm cache) only ever
                    // commits fewer runs and fewer bytes: changed bytes
                    // live inside the state word and write-set slots,
                    // at most one run forms per field, and the gap-
                    // merge rule only fires when the 6-byte header it
                    // saves covers the gap bytes it adds — so this
                    // slot-granular bound dominates both commit modes.
                    let state_b = layout.state_bytes(m);
                    let slots_b: usize =
                        access.writes.iter().map(|&s| layout.slot_bytes(m, s)).sum();
                    let mut k = 1 + access.writes.len() + 1;
                    let mut delta_entry_bytes = entry_bytes(state_b)
                        + access
                            .writes
                            .iter()
                            .map(|&s| entry_bytes(layout.slot_bytes(m, s)))
                            .sum::<usize>()
                        + entry_bytes(done_b);
                    let mut delta_data = state_b + slots_b + done_b;
                    if emits {
                        k += 2;
                        delta_entry_bytes += entry_bytes(VERDICT_BYTES) + entry_bytes(U32_BYTES);
                        delta_data += VERDICT_BYTES + U32_BYTES;
                    }
                    writes += sparse_commit_writes(k);
                    billed_writes += sparse_commit_writes(k);
                    write_bytes +=
                        sparse_record_bytes(delta_entry_bytes) + delta_data + 2 * FLAG_BYTES;
                    commit = commit
                        .max(sparse_record_bytes(delta_entry_bytes))
                        .max(block_step_bytes);
                }
            }

            // Verdict readback: count + one cell per possible emitter.
            reads += 1 + emitters;
            read_bytes += U32_BYTES + VERDICT_BYTES * emitters;

            per_key.push(EventCost {
                kind,
                task,
                machines: armed.len(),
                emitters,
                delta_machines,
                degraded_machines,
                reads,
                writes,
                cached_reads,
                // Recovery flag + seq + one whole-block fill per armed
                // machine (the fresh-arm cold path; resuming a
                // pre-crash event is bounded by `reads`).
                cold_extra_reads: 2 + armed.len(),
                commit_bytes: commit,
                read_bytes,
                cached_read_bytes,
                write_bytes,
                billed_writes,
                cycles,
                arming_writes: sparse_commit_writes(5),
                arming_write_bytes,
            });
        }
    }

    let reset_commit_bytes = machines
        .iter()
        .map(|m| entry_bytes(layout.machine_block_bytes(m)))
        .sum::<usize>()
        + entry_bytes(U32_BYTES) // verdict count
        + entry_bytes(U64_BYTES) // seq
        + u16_list_entry_bytes(0) // empty worklist
        + entry_bytes(done_b); // done bitmap

    // The full-scan engine (`RoutingMode::FullScan`, or a suite too
    // large to route) arms by staging the step routine's `pc` + `len`
    // cells instead of the worklist + done bitmap, and each step
    // completes through the routine's 4-byte `pc` rather than a done
    // bit. Under the tagged layout the routed figures dominate both
    // variants (the 8-byte done cell outweighs a u32); the packed
    // bitmap can undercut them, so the scan-format commits join the
    // capacity max explicitly.
    let scan_arming_bytes = entry_bytes(ENCODED_EVENT_BYTES)
        + entry_bytes(U64_BYTES)
        + entry_bytes(U32_BYTES)
        + 2 * entry_bytes(U32_BYTES);
    let scan_step_bytes = machines
        .iter()
        .map(|m| {
            let mut b = entry_bytes(layout.machine_block_bytes(m)) + entry_bytes(U32_BYTES);
            if m.transitions.iter().any(|t| t.emit.is_some()) {
                b += entry_bytes(VERDICT_BYTES) + entry_bytes(U32_BYTES);
            }
            b
        })
        .max()
        .unwrap_or(0);

    let worst_commit_bytes = per_key
        .iter()
        .map(|c| c.commit_bytes)
        .max()
        .unwrap_or(0)
        .max(reset_commit_bytes)
        .max(scan_arming_bytes)
        .max(scan_step_bytes);

    SuiteBounds {
        per_key,
        worst_commit_bytes,
        reset_commit_bytes,
    }
}

/// Worst-case cost of delivering one **batch** of up to `max_events`
/// events through the group-commit path (`BatchMode::Enabled`).
///
/// The model is deliberately conservative — it must dominate any
/// actual batch the engine can run:
///
/// - **arming**: recovery-flag + batch-seq reads, then one 5-sub-write
///   sparse commit (events region, batch seq, verdict count, merged
///   worklist, done bitmap). The events region entry carries a `u16`
///   count plus `max_events` encoded events; the merged worklist is
///   bounded by the whole suite.
/// - **batch setup**: worklist count + done bitmap + worklist items +
///   events count + events payload — 5 reads.
/// - **per machine** (all machines may be armed): the footprint is the
///   union of the machine's access sets over *every* dispatch key, and
///   a machine emits if *any* of its transitions emits. One covering
///   span read (whole block when any key degrades), a verdict-count
///   read for emitters, then a single sparse commit of: the state word
///   (or the whole block image) + every merged write slot + up to
///   `max_events` verdict cells + the count + the done bit.
/// - **verdict readback**: count read + up to `max_events` cells per
///   emitter.
///
/// Dominance over the engine's dynamic cost follows from the same
/// arguments as [`suite_bounds`], plus: the merged worklist is a subset
/// of all machines, a batch's dynamic merged access set unions access
/// sets of *delivered* keys only (⊆ union over all keys), and a machine
/// emits at most one verdict per event in the batch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchBounds {
    /// Batch capacity the bound was derived for.
    pub max_events: usize,
    /// Journal bytes of the batch arming commit.
    pub arming_commit_bytes: usize,
    /// Largest single journal commit the batch path can stage (arming
    /// or any machine's coalesced commit).
    pub worst_commit_bytes: usize,
    /// Journal bytes the batch cells add to the whole-suite reset
    /// commit (batch sequence, cleared events region, empty merged
    /// worklist, done bitmap) — add to
    /// [`SuiteBounds::reset_commit_bytes`] when sizing a journal for a
    /// batch-enabled engine.
    pub reset_extra_bytes: usize,
    /// Worst-case FRAM reads for one full batch.
    pub reads: usize,
    /// Worst-case FRAM writes for one full batch.
    pub writes: usize,
    /// Worst-case FRAM reads for one full batch with the volatile
    /// shadow cache warm. The batch path commits exclusively through
    /// sparse records (zero protocol reads), so a steady-state batch
    /// reads **nothing** from FRAM.
    pub cached_reads: usize,
    /// Extra FRAM reads the first batch after a reboot pays to refill
    /// the shadow: recovery flag + batch sequence + one whole-block
    /// fill per armed machine. A resumed (pre-crash) batch is also
    /// bounded by the uncached [`BatchBounds::reads`].
    pub cold_extra_reads: usize,
    /// Worst-case FRAM bytes read for one full batch.
    pub read_bytes: usize,
    /// Worst-case warm-cache FRAM bytes read — always `0`, mirroring
    /// [`BatchBounds::cached_reads`].
    pub cached_read_bytes: usize,
    /// Worst-case FRAM bytes written for one full batch.
    pub write_bytes: usize,
    /// Worst-case engine CPU cycles for one full batch. Routing is
    /// charged twice per event (lookup at arming, again when the batch
    /// runs), then each machine pays dispatch + worst-key stepping per
    /// event.
    pub cycles: u64,
}

impl BatchBounds {
    /// Total FRAM operations (reads + writes) for one full batch.
    pub fn ops(&self) -> usize {
        self.reads + self.writes
    }

    /// Worst-case FRAM ops per event when the batch is full — the
    /// number the bench's measured per-event figure must stay under.
    pub fn ops_per_event_ceil(&self) -> usize {
        self.ops().div_ceil(self.max_events.max(1))
    }

    /// Total FRAM operations for one full batch with the shadow cache
    /// warm.
    pub fn cached_ops(&self) -> usize {
        self.cached_reads + self.writes
    }

    /// Worst-case warm-cache FRAM ops per event when the batch is
    /// full.
    pub fn cached_ops_per_event_ceil(&self) -> usize {
        self.cached_ops().div_ceil(self.max_events.max(1))
    }
}

/// Computes the batch-path resource bound under the engine's default
/// packed layout. See [`batch_bounds_for`].
pub fn batch_bounds(compiled: &CompiledSuite, max_events: usize) -> BatchBounds {
    batch_bounds_for(compiled, max_events, LayoutKind::default())
}

/// Computes the batch-path resource bound for batches of up to
/// `max_events` events (see [`BatchBounds`]), modelling machine images
/// under `layout`.
pub fn batch_bounds_for(
    compiled: &CompiledSuite,
    max_events: usize,
    layout: LayoutKind,
) -> BatchBounds {
    let machines = compiled.machines();
    let task_count = compiled.task_count();
    let done_b = layout.done_bytes(machines.len());

    // Arming: flag + batch-seq reads, one 5-sub-write sparse commit.
    let mut reads = 2;
    let mut read_bytes = FLAG_BYTES + U64_BYTES;
    let mut writes = sparse_commit_writes(5);
    let arming_entry_bytes = entry_bytes(2 + ENCODED_EVENT_BYTES * max_events)
        + entry_bytes(U64_BYTES)
        + entry_bytes(U32_BYTES)
        + u16_list_entry_bytes(machines.len())
        + entry_bytes(done_b);
    let arming_commit_bytes = sparse_record_bytes(arming_entry_bytes);
    let arming_data_bytes = (2 + ENCODED_EVENT_BYTES * max_events)
        + U64_BYTES
        + U32_BYTES
        + (2 + 2 * machines.len())
        + done_b;
    let mut write_bytes = arming_commit_bytes + arming_data_bytes + 2 * FLAG_BYTES;
    let mut commit = arming_commit_bytes;
    // Routing is looked up per event at arming and again when the
    // batch runs.
    let mut cycles = 2 * ROUTING_LOOKUP_CYCLES * max_events as u64;

    // Batch setup: worklist count + done bitmap + items + events count
    // + events payload.
    reads += 5;
    read_bytes += 2 + done_b + 2 * machines.len() + 2 + ENCODED_EVENT_BYTES * max_events;

    let mut emitters = 0;
    for m in machines {
        // Merged footprint over every key the machine can see, plus
        // the worst per-event dispatch length for the cycle bound.
        let mut access = crate::compile::AccessSet::default();
        let mut emits = false;
        let mut worst_step_cycles = 0u64;
        for kind in [EventKind::StartTask, EventKind::EndTask] {
            for key_task in 0..=task_count {
                let probe = if key_task == task_count {
                    u32::MAX
                } else {
                    key_task as u32
                };
                access.union_with(m.access(kind, probe));
                let list = m.transition_list(kind, probe);
                worst_step_cycles = worst_step_cycles.max(m.step_cost(kind, probe).cycles);
                emits |= list
                    .iter()
                    .any(|&ti| m.transitions[ti as usize].emit.is_some());
            }
        }
        if emits {
            emitters += 1;
        }
        // Worst static step ceiling over every key the machine can see
        // — the engine bills the actual key's ceiling per event, so
        // the batch bound stays sound for any event mix.
        cycles += max_events as u64 * (COMPILED_DISPATCH_CYCLES + worst_step_cycles);

        // Span (or block) read + verdict-count read for emitters.
        reads += 1 + usize::from(emits);
        let block_b = layout.machine_block_bytes(m);
        let span_bytes = if access.whole_block {
            block_b
        } else {
            layout.span_bytes(m, access.max_touched_slot())
        };
        read_bytes += span_bytes + if emits { U32_BYTES } else { 0 };

        let verdict_subs = if emits { max_events + 1 } else { 0 };
        let state_subs = if access.whole_block {
            1 // whole block image in one raw sub-write
        } else {
            1 + access.writes.len()
        };
        writes += sparse_commit_writes(state_subs + verdict_subs + 1);

        let verdict_entry_bytes = if emits {
            max_events * entry_bytes(VERDICT_BYTES) + entry_bytes(U32_BYTES)
        } else {
            0
        };
        let verdict_data = if emits {
            max_events * VERDICT_BYTES + U32_BYTES
        } else {
            0
        };
        let state_b = layout.state_bytes(m);
        let slots_b: usize = access.writes.iter().map(|&s| layout.slot_bytes(m, s)).sum();
        let delta_entries = entry_bytes(state_b)
            + access
                .writes
                .iter()
                .map(|&s| entry_bytes(layout.slot_bytes(m, s)))
                .sum::<usize>()
            + verdict_entry_bytes
            + entry_bytes(done_b);
        let block_entries = entry_bytes(block_b) + verdict_entry_bytes + entry_bytes(done_b);
        // Write bytes follow the format the engine actually uses for
        // this machine (block image when the merged set degrades); the
        // diff path only ever commits fewer runs and fewer bytes (see
        // `suite_bounds_for`), so the slot-granular figure dominates.
        let (record_entries, commit_data) = if access.whole_block {
            (block_entries, block_b + verdict_data + done_b)
        } else {
            (delta_entries, state_b + slots_b + verdict_data + done_b)
        };
        write_bytes += sparse_record_bytes(record_entries) + commit_data + 2 * FLAG_BYTES;
        commit = commit
            .max(sparse_record_bytes(delta_entries))
            .max(sparse_record_bytes(block_entries));
    }

    // Verdict readback: count + up to `max_events` cells per emitter.
    reads += 1 + emitters * max_events;
    read_bytes += U32_BYTES + VERDICT_BYTES * emitters * max_events;

    // Reset surcharge: batch seq + cleared events count (a 2-byte raw
    // image) + empty merged worklist + done bitmap.
    let reset_extra_bytes =
        entry_bytes(U64_BYTES) + entry_bytes(2) + u16_list_entry_bytes(0) + entry_bytes(done_b);

    BatchBounds {
        max_events,
        arming_commit_bytes,
        worst_commit_bytes: commit,
        reset_extra_bytes,
        reads,
        writes,
        cached_reads: 0,
        cold_extra_reads: 2 + machines.len(),
        read_bytes,
        cached_read_bytes: 0,
        write_bytes,
        cycles,
    }
}

/// Cross-checks the suite's static bounds against a journal capacity.
/// With `journal_capacity: None` the check degenerates to computing the
/// bounds (no findings).
pub fn check_bounds(compiled: &CompiledSuite, journal_capacity: Option<usize>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Some(capacity) = journal_capacity else {
        return diags;
    };
    let b = suite_bounds(compiled);
    if b.reset_commit_bytes > capacity {
        diags.push(Diagnostic::error(
            "bounds",
            "suite",
            format!(
                "whole-suite reset commits {} journal bytes, but the journal holds {capacity}",
                b.reset_commit_bytes
            ),
        ));
    }
    for c in &b.per_key {
        if c.commit_bytes > capacity {
            let task = match c.task {
                Some(t) => compiled.task_name(t).to_string(),
                None => "<out-of-graph>".to_string(),
            };
            diags.push(Diagnostic::error(
                "bounds",
                format!("event {:?}({task})", c.kind),
                format!(
                    "worst-case commit of {} journal bytes exceeds the capacity of {capacity}",
                    c.commit_bytes
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_core::app::{AppGraph, AppGraphBuilder};

    fn app() -> AppGraph {
        let mut b = AppGraphBuilder::new();
        let a = b.task("a");
        let s = b.task("b");
        b.path(&[a, s]);
        b.build().unwrap()
    }

    #[test]
    fn bounds_scale_with_interest_and_emits() {
        let app = app();
        let suite = crate::compile(
            "a { maxTries: 2 onFail: skipPath; }\n\
             b { maxTries: 2 onFail: skipTask; }",
            &app,
        )
        .unwrap();
        let cs = CompiledSuite::compile(&suite, &app).unwrap();
        // The byte pins below are the legacy tagged-geometry numbers;
        // the packed layout only shrinks them (see the packed test).
        let b = suite_bounds_for(&cs, LayoutKind::Tagged);

        // 2 tasks + wildcard, both kinds.
        assert_eq!(b.per_key.len(), 6);
        let key = |kind, task| {
            b.per_key
                .iter()
                .find(|c| c.kind == kind && c.task == task)
                .unwrap()
        };
        // maxTries machines observe starts of their task and can emit;
        // their single counter means every key touches the whole block
        // and degrades to whole-block commits.
        let start_a = key(EventKind::StartTask, Some(0));
        assert_eq!(start_a.machines, 1);
        assert_eq!(start_a.emitters, 1);
        assert_eq!(start_a.degraded_machines, 1);
        assert_eq!(start_a.delta_machines, 0);
        // An armed emitting machine costs more than an un-armed key.
        let wild = key(EventKind::StartTask, None);
        assert_eq!(wild.machines, 0);
        assert!(start_a.ops() > wild.ops());
        // Sparse arming (2) + worklist (4) + degraded emitting machine
        // (11) + readback (1 + 1).
        assert_eq!(start_a.reads, 2 + 4 + 11 + 1 + 1);
        // Warm cache: only the degraded machine's 4-entry commit
        // protocol reads survive; cold refill = flag + seq + 1 block.
        assert_eq!(start_a.cached_reads, commit_reads(4));
        assert_eq!(start_a.cold_extra_reads, 2 + 1);
        assert!(start_a.cached_reads < start_a.reads);
        // Byte/cycle pins for the degraded emitting key (1-var block).
        let entry_data = block_bytes(1) + U64_BYTES + VERDICT_BYTES + U32_BYTES;
        let protocol = 2 + ENTRY_HEADER * 4 + entry_data;
        assert_eq!(start_a.cached_read_bytes, protocol);
        assert_eq!(
            start_a.read_bytes,
            // arming flag+seq, worklist setup, block load, protocol
            // re-reads, verdict count, readback count + one cell.
            (FLAG_BYTES + U64_BYTES)
                + (2 + U64_BYTES + 2 + ENCODED_EVENT_BYTES)
                + block_bytes(1)
                + protocol
                + U32_BYTES
                + (U32_BYTES + VERDICT_BYTES)
        );
        assert_eq!(
            start_a.write_bytes,
            start_a.arming_write_bytes + (ENTRY_HEADER * 4 + entry_data) + 2 + 1 + entry_data + 1
        );
        assert_eq!(start_a.arming_writes, sparse_commit_writes(5));
        // The 4-entry degraded commit bills 4 fewer write bases than
        // the op counter sees (one per staged entry).
        assert_eq!(start_a.billed_writes, start_a.writes - 4);
        // One armed machine billing its key's static step ceiling.
        // The maxTries lowering dispatches 3 transitions on its task's
        // start key; optimized (fused guards), the cycle-priced worst
        // path plus the 3 scan tests pins at 20 — tighter than the old
        // 12-cycles-per-transition flat rate.
        let sc = cs.machines()[0].step_cost(EventKind::StartTask, 0);
        assert_eq!(sc.cycles, 20);
        assert!(sc.cycles < 3 * STEP_PER_TRANSITION_CYCLES);
        assert_eq!(
            start_a.cycles,
            ROUTING_LOOKUP_CYCLES + COMPILED_DISPATCH_CYCLES + sc.cycles
        );
        // An un-armed key still pays the routing lookup and arming
        // commit, nothing else.
        assert_eq!(wild.cycles, ROUTING_LOOKUP_CYCLES);
        assert_eq!(wild.write_bytes, wild.arming_write_bytes);
        assert_eq!(wild.cached_read_bytes, 0);
        assert!(b.worst_commit_bytes >= b.reset_commit_bytes);
        assert!(b.worst_event().unwrap().ops() >= start_a.ops());
    }

    /// Pins the delta-key arithmetic on a hand-built sparse machine:
    /// 12 slots, the routed body increments only slot 0.
    #[test]
    fn delta_keys_are_bounded_by_their_write_set() {
        use crate::expr::{BinOp, Expr, Value, VarType};
        use crate::fsm::{MonitorSuite, StateMachine, Stmt, TaskPat, Transition, Trigger};

        let app = app();
        let mut sm = StateMachine::new("sparse", "a");
        for v in 0..12 {
            sm.add_var(&format!("v{v}"), VarType::Int, Value::Int(0));
        }
        sm.add_state("S");
        sm.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::Start(TaskPat::named("a")),
            guard: None,
            body: vec![Stmt::Assign(
                "v0".into(),
                Expr::bin(BinOp::Add, Expr::var("v0"), Expr::int(1)),
            )],
            emit: None,
        });
        let mut suite = MonitorSuite::new();
        suite.push(sm);
        let cs = CompiledSuite::compile(&suite, &app).unwrap();
        let b = suite_bounds_for(&cs, LayoutKind::Tagged);

        let start_a = b
            .per_key
            .iter()
            .find(|c| c.kind == EventKind::StartTask && c.task == Some(0))
            .unwrap();
        assert_eq!(start_a.delta_machines, 1);
        assert_eq!(start_a.degraded_machines, 0);
        // Arming flag+seq (2) + worklist (4) + span load (1) +
        // readback (1).
        assert_eq!(start_a.reads, 2 + 4 + 1 + 1);
        // Sparse arming (8) + sparse step of state+slot+done (6).
        assert_eq!(start_a.writes, 8 + 6);
        // Byte pins: span covers state word + slot 0 only; the sparse
        // step stages a 3-entry record then applies 21 payload bytes.
        let span = STATE_WORD_BYTES + NV_VALUE_BYTES;
        assert_eq!(
            start_a.read_bytes,
            (FLAG_BYTES + U64_BYTES) + (2 + U64_BYTES + 2 + ENCODED_EVENT_BYTES) + span + U32_BYTES
        );
        let delta_entries =
            entry_bytes(STATE_WORD_BYTES) + entry_bytes(NV_VALUE_BYTES) + entry_bytes(U64_BYTES);
        let delta_data = STATE_WORD_BYTES + NV_VALUE_BYTES + U64_BYTES;
        assert_eq!(
            start_a.write_bytes,
            start_a.arming_write_bytes + sparse_record_bytes(delta_entries) + delta_data + 2
        );
        assert_eq!(start_a.cached_read_bytes, 0);
        // All-sparse commits bill 1:1 with the op counter.
        assert_eq!(start_a.billed_writes, start_a.writes);
        assert_eq!(
            start_a.cycles,
            ROUTING_LOOKUP_CYCLES + COMPILED_DISPATCH_CYCLES + STEP_PER_TRANSITION_CYCLES
        );
        // All-sparse key: a warm cache reads NOTHING from FRAM, and the
        // cold refill is flag + seq + one whole-block fill.
        assert_eq!(start_a.cached_reads, 0);
        assert_eq!(start_a.cold_extra_reads, 2 + 1);
        assert_eq!(start_a.cached_ops(), start_a.writes);
        // The byte bound still covers the whole-block image, so a
        // delta-disabled engine cannot overflow a derived capacity.
        assert!(start_a.commit_bytes >= entry_bytes(block_bytes(12)) + entry_bytes(U64_BYTES));
    }

    #[test]
    fn batch_bounds_amortise_arming_and_grow_with_capacity() {
        let app = app();
        let suite = crate::compile(
            "a { maxTries: 2 onFail: skipPath; }\n\
             b { maxTries: 2 onFail: skipTask; }",
            &app,
        )
        .unwrap();
        let cs = CompiledSuite::compile(&suite, &app).unwrap();
        let b1 = batch_bounds(&cs, 1);
        let b4 = batch_bounds(&cs, 4);
        // Arming once for four events amortises: a full batch costs
        // far less than four batches of one, so per-event ops shrink.
        assert!(b4.ops() < 4 * b1.ops());
        assert!(b4.ops_per_event_ceil() < b1.ops());
        // Bigger batches stage bigger arming records and commits.
        assert!(b4.arming_commit_bytes > b1.arming_commit_bytes);
        assert!(b4.worst_commit_bytes >= b1.worst_commit_bytes);
        assert!(b4.worst_commit_bytes >= b4.arming_commit_bytes);
        // Every batch commit is sparse: the warm-cache read bound is
        // zero at any capacity, and cold refill scales with the suite.
        assert_eq!(b1.cached_reads, 0);
        assert_eq!(b4.cached_reads, 0);
        assert_eq!(b4.cold_extra_reads, 2 + 2);
        assert_eq!(b4.cached_ops(), b4.writes);
        assert!(b4.cached_ops_per_event_ceil() <= b4.ops_per_event_ceil());
        // Bytes and cycles grow with capacity; warm-cache byte traffic
        // is zero (all commits sparse); routing + dispatch are charged
        // per event, so the cycle bound scales exactly linearly.
        assert_eq!(b4.cached_read_bytes, 0);
        assert!(b4.read_bytes > b1.read_bytes);
        assert!(b4.write_bytes > b1.write_bytes);
        assert_eq!(b4.cycles, 4 * b1.cycles);
    }

    /// The packed layout changes bytes, never ops: every op bound is
    /// identical across layouts, and every byte bound shrinks (or ties)
    /// under packing. Pins the packed figures on the 12-slot sparse
    /// machine whose counter the interval analysis narrows to 1 byte.
    #[test]
    fn packed_bounds_shrink_bytes_and_preserve_ops() {
        use crate::expr::{BinOp, Expr, Value, VarType};
        use crate::fsm::{MonitorSuite, StateMachine, Stmt, TaskPat, Transition, Trigger};

        let app = app();
        let mut sm = StateMachine::new("sparse", "a");
        for v in 0..12 {
            sm.add_var(&format!("v{v}"), VarType::Int, Value::Int(0));
        }
        sm.add_state("S");
        sm.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::Start(TaskPat::named("a")),
            guard: None,
            body: vec![Stmt::Assign(
                "v0".into(),
                Expr::bin(BinOp::Add, Expr::var("v0"), Expr::int(1)),
            )],
            emit: None,
        });
        let mut suite = MonitorSuite::new();
        suite.push(sm);
        let cs = CompiledSuite::compile(&suite, &app).unwrap();
        let packed = suite_bounds_for(&cs, LayoutKind::Packed);
        let tagged = suite_bounds_for(&cs, LayoutKind::Tagged);
        assert_eq!(suite_bounds(&cs), packed, "packed is the default");

        for (p, t) in packed.per_key.iter().zip(&tagged.per_key) {
            assert_eq!((p.kind, p.task), (t.kind, t.task));
            assert_eq!(p.reads, t.reads);
            assert_eq!(p.writes, t.writes);
            assert_eq!(p.cached_reads, t.cached_reads);
            assert_eq!(p.cold_extra_reads, t.cold_extra_reads);
            assert_eq!(p.billed_writes, t.billed_writes);
            assert_eq!(p.cycles, t.cycles);
            assert!(p.read_bytes <= t.read_bytes);
            assert!(p.write_bytes <= t.write_bytes);
            assert!(p.commit_bytes <= t.commit_bytes);
        }
        assert!(packed.worst_commit_bytes < tagged.worst_commit_bytes);
        assert!(packed.reset_commit_bytes < tagged.reset_commit_bytes);

        // v0's unguarded increment widens it to a full 8-byte slot, but
        // state (1 state), done (1 machine) and the eleven untouched
        // 1-byte counters all pack: span = 1 (state) + 8 (v0).
        let start_a = packed
            .per_key
            .iter()
            .find(|c| c.kind == EventKind::StartTask && c.task == Some(0))
            .unwrap();
        let m = &cs.machines()[0];
        assert_eq!(m.layout().state_bytes, 1);
        assert_eq!(m.layout().span(Some(0)), 1 + 8);
        assert_eq!(m.layout().block_len, 1 + 8 + 11);
        assert_eq!(
            start_a.read_bytes,
            (FLAG_BYTES + U64_BYTES)
                + (2 + 1 + 2 + ENCODED_EVENT_BYTES) // 1-byte done bitmap
                + (1 + 8)
                + U32_BYTES
        );
        let delta_entries = entry_bytes(1) + entry_bytes(8) + entry_bytes(1);
        let delta_data = 1 + 8 + 1;
        assert_eq!(
            start_a.write_bytes,
            start_a.arming_write_bytes + sparse_record_bytes(delta_entries) + delta_data + 2
        );

        let bp = batch_bounds_for(&cs, 4, LayoutKind::Packed);
        let bt = batch_bounds_for(&cs, 4, LayoutKind::Tagged);
        assert_eq!(batch_bounds(&cs, 4), bp, "packed is the default");
        assert_eq!(bp.reads, bt.reads);
        assert_eq!(bp.writes, bt.writes);
        assert_eq!(bp.cycles, bt.cycles);
        assert!(bp.read_bytes < bt.read_bytes);
        assert!(bp.write_bytes < bt.write_bytes);
        assert!(bp.worst_commit_bytes <= bt.worst_commit_bytes);
    }

    #[test]
    fn capacity_gate_rejects_tiny_journals() {
        let app = app();
        let suite = crate::compile("a { maxTries: 2 onFail: skipPath; }", &app).unwrap();
        let cs = CompiledSuite::compile(&suite, &app).unwrap();
        assert!(check_bounds(&cs, None).is_empty());
        assert!(check_bounds(&cs, Some(1 << 20)).is_empty());
        let diags = check_bounds(&cs, Some(16));
        assert!(
            diags.iter().any(|d| d.is_error() && d.pass == "bounds"),
            "{diags:?}"
        );
    }
}
