//! Pass 3: post-compile reachability.
//!
//! Walks the compiled transition graph from the initial state and flags
//! dead artifacts: states no event sequence can enter, and transitions
//! that can never fire — either because their source state is
//! unreachable or because no dispatch-table entry routes any event to
//! them. All findings are warnings (dead code wastes FRAM and review
//! attention but cannot misbehave); the hand-written-IR author or the
//! lowering pass is the intended audience.

use std::collections::VecDeque;

use artemis_spec::Diagnostic;

use crate::compile::CompiledMachine;

/// Flags unreachable states and dead transitions of one compiled
/// machine. `state_names` come from the source machine (compiled
/// programs only keep indices).
pub fn check_reachability(
    m: &CompiledMachine,
    name: &str,
    state_names: &[String],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let subject = format!("machine `{name}`");
    let state_count = state_names.len();
    if state_count == 0 || m.initial_state as usize >= state_count {
        // The verifier reports these as errors; nothing to walk.
        return diags;
    }

    // A transition can only fire if some dispatch list routes an event
    // to it.
    let mut dispatched = vec![false; m.transitions.len()];
    for k in 0..2 {
        for list in m.dispatch[k].iter().chain([&m.wildcard[k]]) {
            for &ti in list {
                if let Some(d) = dispatched.get_mut(ti as usize) {
                    *d = true;
                }
            }
        }
    }

    // BFS over dispatched transitions from the initial state.
    let mut reachable = vec![false; state_count];
    reachable[m.initial_state as usize] = true;
    let mut queue = VecDeque::from([m.initial_state]);
    while let Some(s) = queue.pop_front() {
        for (ti, t) in m.transitions.iter().enumerate() {
            if !dispatched[ti] || t.from != s {
                continue;
            }
            let to = t.to as usize;
            if to < state_count && !reachable[to] {
                reachable[to] = true;
                queue.push_back(t.to);
            }
        }
    }

    for (si, r) in reachable.iter().enumerate() {
        if !r {
            diags.push(Diagnostic::warning(
                "reachability",
                subject.clone(),
                format!(
                    "state `{}` is unreachable from the initial state",
                    state_names[si]
                ),
            ));
        }
    }
    for (ti, t) in m.transitions.iter().enumerate() {
        if !dispatched[ti] {
            diags.push(Diagnostic::warning(
                "reachability",
                subject.clone(),
                format!("transition #{ti} is routed by no event key and can never fire"),
            ));
        } else if (t.from as usize) < state_count && !reachable[t.from as usize] {
            diags.push(Diagnostic::warning(
                "reachability",
                subject.clone(),
                format!(
                    "transition #{ti} departs unreachable state `{}`",
                    state_names[t.from as usize]
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::{StateMachine, TaskPat, Transition, Trigger};
    use artemis_core::app::{AppGraph, AppGraphBuilder};

    fn app() -> AppGraph {
        let mut b = AppGraphBuilder::new();
        let a = b.task("a");
        let s = b.task("b");
        b.path(&[a, s]);
        b.build().unwrap()
    }

    fn simple_transition(from: u32, to: u32) -> Transition {
        Transition {
            from,
            to,
            trigger: Trigger::Start(TaskPat::named("a")),
            guard: None,
            body: vec![],
            emit: None,
        }
    }

    #[test]
    fn dead_state_and_stranded_transition_are_flagged() {
        let mut m = StateMachine::new("m", "a");
        m.add_state("Live");
        m.add_state("Orphan");
        m.transitions.push(simple_transition(0, 0));
        // Departs the orphan state nothing ever enters.
        m.transitions.push(simple_transition(1, 0));
        let c = crate::CompiledMachine::compile(&m, &app()).unwrap();
        let diags = check_reachability(&c, &m.name, &m.states);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("`Orphan` is unreachable")),
            "{diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("departs unreachable state")),
            "{diags:?}"
        );
        assert!(diags.iter().all(|d| !d.is_error()));
    }

    #[test]
    fn fully_connected_machine_is_clean() {
        let mut m = StateMachine::new("m", "a");
        m.add_state("A");
        m.add_state("B");
        m.transitions.push(simple_transition(0, 1));
        m.transitions.push(simple_transition(1, 0));
        let c = crate::CompiledMachine::compile(&m, &app()).unwrap();
        assert!(check_reachability(&c, &m.name, &m.states).is_empty());
    }
}
