//! Install-time static analysis over compiled monitor suites.
//!
//! PRs 1–2 made the engine execute ahead-of-time-compiled bytecode —
//! and trust it completely: nothing proved a program's slot, register
//! and jump indices in bounds, that its per-event FRAM footprint fits
//! the journal, or that two properties cannot hand the runtime
//! contradictory corrective actions on the same event. This module is
//! that proof, run once at `install()` time (in the spirit of the eBPF
//! verifier and Alpaca's static WAR-hazard analysis — intermittent
//! systems earn crash-correctness guarantees statically, not at
//! runtime):
//!
//! 1. [`verifier`] — per-machine bytecode verification: every
//!    register/variable-slot/state index and jump target in bounds,
//!    jumps strictly forward (termination), guards abstractly typed to
//!    a boolean result. A program the verifier accepts cannot index out
//!    of bounds or loop in [`crate::compile::CompiledMachine::step`]
//!    ("verifier accepts ⇒ engine safe" — pinned by the mutation
//!    fuzzers in `crates/ir/tests/verifier_fuzz.rs`).
//! 2. [`bounds`] — worst-case per-event FRAM reads/writes and
//!    journal-commit bytes, computed by walking the dispatch tables and
//!    the routing index; cross-checked against the journal capacity at
//!    install and against measured dispatch-benchmark numbers in
//!    `artemis-bench`.
//! 3. [`reachability`] — dead states and transitions the optimiser
//!    produced or the spec implied.
//! 4. [`conflicts`] — event keys on which two machines can
//!    simultaneously signal conflicting `onFail` actions, with the
//!    arbitration order the runtime will apply.
//! 5. [`energy`] — per-task worst-case attempt energy (declared body
//!    cost + monitor overhead priced from the FRAM bounds through the
//!    device cost model) against the capacitor's usable budget:
//!    statically infeasible tasks reject the install before the
//!    brown-out/replay loop can ever happen on-device.
//!
//! All passes report through the unified [`artemis_spec::Diagnostic`]
//! type; errors reject the install, warnings surface on the trace.

pub mod bounds;
pub mod conflicts;
pub mod energy;
pub mod reachability;
pub mod verifier;

pub use bounds::{
    batch_bounds, batch_bounds_for, check_bounds, suite_bounds, suite_bounds_for, BatchBounds,
    EventCost, LayoutKind, SuiteBounds,
};
pub use conflicts::check_conflicts;
pub use energy::{
    arming_energy, batch_energy, batch_energy_cached, body_energy, check_energy, event_energy,
    event_energy_cached, task_feasibility, TaskFeasibility, Verdict, RUNTIME_ATTEMPT_OVERHEAD,
};
pub use reachability::check_reachability;
pub use verifier::{verify_machine, MachineEnv};

use artemis_spec::{sort_diagnostics, Diagnostic};

use crate::compile::CompiledSuite;
use crate::expr::VarType;
use crate::fsm::MonitorSuite;

/// Runs every analysis pass over a compiled suite paired with its
/// source machines. Returns all findings, errors first.
///
/// `journal_capacity` is the payload capacity (bytes) of the journal
/// the engine will commit through; pass `None` to skip the capacity
/// cross-check (e.g. when linting outside an install).
pub fn analyze_suite(
    suite: &MonitorSuite,
    compiled: &CompiledSuite,
    journal_capacity: Option<usize>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    if suite.machines().len() != compiled.machines().len() {
        diags.push(Diagnostic::error(
            "verifier",
            "suite",
            format!(
                "compiled suite has {} machines but the source suite has {}",
                compiled.machines().len(),
                suite.machines().len()
            ),
        ));
        return diags;
    }

    for (m, cm) in suite.machines().iter().zip(compiled.machines()) {
        let var_types: Vec<VarType> = m.vars.iter().map(|v| v.ty).collect();
        let env = MachineEnv {
            name: &m.name,
            state_count: m.states.len(),
            var_types: &var_types,
        };
        diags.extend(verify_machine(cm, &env));
        diags.extend(check_reachability(cm, &m.name, &m.states));
    }

    diags.extend(check_conflicts(suite, compiled));
    diags.extend(check_bounds(compiled, journal_capacity));

    sort_diagnostics(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_core::app::{AppGraph, AppGraphBuilder};

    fn health_app() -> AppGraph {
        let mut b = AppGraphBuilder::new();
        let body = b.task("bodyTemp");
        let avg = b.task_with_var("calcAvg", "avgTemp");
        let heart = b.task("heartRate");
        let accel = b.task("accel");
        let classify = b.task("classify");
        let mic = b.task("micSense");
        let filter = b.task("filter");
        let send = b.task("send");
        b.path(&[body, avg, heart, send]);
        b.path(&[accel, classify, send]);
        b.path(&[mic, filter, send]);
        b.build().unwrap()
    }

    /// The paper's own Figure 5 specification must pass the whole
    /// analysis with zero errors — it is the CI lint baseline.
    #[test]
    fn figure5_suite_has_no_errors() {
        let app = health_app();
        let suite = crate::compile(artemis_spec::samples::FIGURE5, &app).unwrap();
        let compiled = CompiledSuite::compile(&suite, &app).unwrap();
        let diags = analyze_suite(&suite, &compiled, None);
        assert!(
            diags.iter().all(|d| !d.is_error()),
            "unexpected errors: {diags:?}"
        );
    }

    #[test]
    fn machine_count_mismatch_is_an_error() {
        let app = health_app();
        let suite = crate::compile(artemis_spec::samples::FIGURE5, &app).unwrap();
        let compiled = CompiledSuite::compile(&suite, &app).unwrap();
        let mut shorter = crate::fsm::MonitorSuite::default();
        shorter.push(suite.machines()[0].clone());
        let diags = analyze_suite(&shorter, &compiled, None);
        assert!(diags.iter().any(|d| d.is_error()), "{diags:?}");
    }
}
