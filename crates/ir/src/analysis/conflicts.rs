//! Pass 4: cross-monitor conflict detection.
//!
//! Two machines armed by the same `(kind, task)` event key can both
//! take an emitting transition on one event and hand the runtime
//! contradictory corrective actions — `skipPath` vs `restartPath` on
//! the same path, or `skipTask` vs `restartTask`. The runtime resolves
//! such collisions deterministically (`Action::arbitrate`: the higher
//! severity rank wins — completePath > skipPath > restartPath >
//! skipTask > restartTask — and ties keep the earliest machine in suite
//! order), but a specification that *relies* on arbitration is usually
//! a specification bug, so this pass surfaces every such pair together
//! with the order the runtime will apply.
//!
//! Severity: a pair is an **error** only when both transitions are
//! provably co-fireable — unguarded and departing their machines'
//! initial states, so the very first matching event triggers both.
//! Guarded or deep-state pairs may never coincide at runtime (the
//! guards encode disjoint conditions the analysis cannot see), so they
//! are warnings. This keeps the paper's own Figure 5 specification —
//! whose `MITD` and `collect` properties share the `start(send)` key
//! with different path actions behind guards — lint-clean at error
//! level.

use std::collections::HashSet;

use artemis_core::event::EventKind;
use artemis_core::property::OnFail;
use artemis_spec::Diagnostic;

use crate::compile::CompiledSuite;
use crate::fsm::MonitorSuite;

/// One machine's possible failure signal under a specific event key.
struct Candidate {
    machine: usize,
    action: OnFail,
    /// Effective one-based path number (`emit.path` falling back to the
    /// machine's governing path); `None` targets the current path.
    path: Option<u32>,
    /// `true` when the transition is unguarded and departs the initial
    /// state: the first matching event provably fires it.
    fires_initially: bool,
}

/// Arbitration rank, mirroring `Action::arbitrate` in `artemis-core`
/// (higher wins; ties keep the earlier machine).
fn rank(a: OnFail) -> u8 {
    match a {
        OnFail::CompletePath => 4,
        OnFail::SkipPath => 3,
        OnFail::RestartPath => 2,
        OnFail::SkipTask => 1,
        OnFail::RestartTask => 0,
    }
}

fn is_path_scoped(a: OnFail) -> bool {
    matches!(
        a,
        OnFail::RestartPath | OnFail::SkipPath | OnFail::CompletePath
    )
}

fn is_task_scoped(a: OnFail) -> bool {
    matches!(a, OnFail::RestartTask | OnFail::SkipTask)
}

/// Detects event keys on which two machines can simultaneously signal
/// conflicting `onFail` actions. The source suite supplies machine
/// names and governing paths; the compiled suite supplies routing and
/// dispatch.
pub fn check_conflicts(suite: &MonitorSuite, compiled: &CompiledSuite) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut reported: HashSet<(usize, usize, &'static str, &'static str)> = HashSet::new();
    let machines = compiled.machines();
    let task_count = compiled.task_count();

    for kind in [EventKind::StartTask, EventKind::EndTask] {
        for key_task in 0..=task_count {
            let (probe, task_label) = if key_task == task_count {
                (u32::MAX, "<any>".to_string())
            } else {
                (
                    key_task as u32,
                    compiled.task_name(key_task as u32).to_string(),
                )
            };
            let armed = compiled.routing().interested(kind, probe);
            if armed.len() < 2 {
                continue;
            }

            // Collect each armed machine's possible signals under this
            // key.
            let mut candidates: Vec<Candidate> = Vec::new();
            for &mi in armed {
                let mi = mi as usize;
                let cm = &machines[mi];
                let src = suite.machines().get(mi);
                for &ti in cm.transition_list(kind, probe) {
                    let t = &cm.transitions[ti as usize];
                    let Some(emit) = &t.emit else { continue };
                    candidates.push(Candidate {
                        machine: mi,
                        action: emit.action,
                        path: emit.path.or(src.and_then(|m| m.path)),
                        fires_initially: t.guard.is_none() && t.from == cm.initial_state,
                    });
                }
            }

            for (i, a) in candidates.iter().enumerate() {
                for b in &candidates[i + 1..] {
                    if a.machine == b.machine || a.action == b.action {
                        continue;
                    }
                    let conflicting = (is_task_scoped(a.action) && is_task_scoped(b.action))
                        || (is_path_scoped(a.action)
                            && is_path_scoped(b.action)
                            && (a.path.is_none() || b.path.is_none() || a.path == b.path));
                    if !conflicting {
                        continue;
                    }
                    let key = (
                        a.machine.min(b.machine),
                        a.machine.max(b.machine),
                        a.action.keyword(),
                        b.action.keyword(),
                    );
                    if !reported.insert(key) {
                        continue;
                    }

                    let name = |mi: usize| {
                        suite
                            .machines()
                            .get(mi)
                            .map(|m| m.name.as_str())
                            .unwrap_or("?")
                            .to_string()
                    };
                    let (na, nb) = (name(a.machine), name(b.machine));
                    let winner = if rank(a.action) > rank(b.action)
                        || (rank(a.action) == rank(b.action) && a.machine < b.machine)
                    {
                        (na.clone(), a.action)
                    } else {
                        (nb.clone(), b.action)
                    };
                    let kind_kw = match kind {
                        EventKind::StartTask => "startTask",
                        EventKind::EndTask => "endTask",
                    };
                    let provable = a.fires_initially && b.fires_initially;
                    let msg = format!(
                        "on {kind_kw}({task_label}) both can signal: `{na}` → {} vs `{nb}` → {}; \
                         arbitration applies `{}` → {} (higher severity rank wins, ties keep \
                         the earlier machine)",
                        a.action.keyword(),
                        b.action.keyword(),
                        winner.0,
                        winner.1.keyword(),
                    );
                    let subject = format!("machines `{na}`/`{nb}`");
                    diags.push(if provable {
                        Diagnostic::error("conflicts", subject, msg)
                    } else {
                        Diagnostic::warning("conflicts", subject, msg)
                    });
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_core::app::{AppGraph, AppGraphBuilder};

    fn app() -> AppGraph {
        let mut b = AppGraphBuilder::new();
        let a = b.task("a");
        let s = b.task("b");
        b.path(&[a, s]);
        b.build().unwrap()
    }

    fn machine_with_emit(name: &str, guarded: bool, action: OnFail) -> crate::fsm::StateMachine {
        use crate::expr::{Expr, Value, VarType};
        use crate::fsm::{EmitFail, StateMachine, TaskPat, Transition, Trigger};
        let mut m = StateMachine::new(name, "a");
        m.add_var("i", VarType::Int, Value::Int(0));
        m.add_state("S");
        m.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::Start(TaskPat::named("a")),
            guard: guarded.then(|| Expr::bin(crate::expr::BinOp::Gt, Expr::var("i"), Expr::int(3))),
            body: vec![],
            emit: Some(EmitFail { action, path: None }),
        });
        m
    }

    fn conflicts_of(ms: Vec<crate::fsm::StateMachine>) -> Vec<Diagnostic> {
        let app = app();
        let mut suite = crate::fsm::MonitorSuite::default();
        for m in ms {
            suite.push(m);
        }
        let cs = CompiledSuite::compile(&suite, &app).unwrap();
        check_conflicts(&suite, &cs)
    }

    #[test]
    fn unguarded_initial_conflict_is_an_error() {
        let diags = conflicts_of(vec![
            machine_with_emit("skips", false, OnFail::SkipTask),
            machine_with_emit("restarts", false, OnFail::RestartTask),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].is_error());
        assert!(diags[0].message.contains("skipTask"));
        assert!(diags[0].message.contains("restartTask"));
        // skipTask outranks restartTask in arbitration.
        assert!(
            diags[0].message.contains("applies `skips`"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn guarded_conflict_is_a_warning() {
        let diags = conflicts_of(vec![
            machine_with_emit("skips", true, OnFail::SkipPath),
            machine_with_emit("restarts", true, OnFail::RestartPath),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(!diags[0].is_error());
        assert!(diags[0].message.contains("arbitration"));
    }

    #[test]
    fn same_action_or_disjoint_scope_is_clean() {
        // Identical actions cannot contradict.
        let diags = conflicts_of(vec![
            machine_with_emit("x", false, OnFail::SkipTask),
            machine_with_emit("y", false, OnFail::SkipTask),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
        // Task-scoped vs path-scoped operate at different granularity.
        let diags = conflicts_of(vec![
            machine_with_emit("x", false, OnFail::SkipTask),
            machine_with_emit("y", false, OnFail::RestartPath),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn distinct_paths_do_not_conflict() {
        use crate::fsm::EmitFail;
        let mut a = machine_with_emit("p1", false, OnFail::SkipPath);
        a.transitions[0].emit = Some(EmitFail {
            action: OnFail::SkipPath,
            path: Some(1),
        });
        let mut b = machine_with_emit("p2", false, OnFail::RestartPath);
        b.transitions[0].emit = Some(EmitFail {
            action: OnFail::RestartPath,
            path: Some(2),
        });
        let diags = conflicts_of(vec![a, b]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
