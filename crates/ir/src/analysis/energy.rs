//! Pass 5: install-time energy feasibility.
//!
//! Intermittent systems fail in a mode conventional static analysis
//! never sees: a task whose single atomic attempt draws more than the
//! capacitor can buffer will brown out *every* attempt, reboot, replay
//! the attempt from its last commit point, and brown out again —
//! forever. The device is "running" but the application makes no
//! forward progress (the Figure-12 DNF regime). ETAP and CleanCut
//! showed the countermeasure: bound per-attempt energy statically and
//! compare it against the buffered budget *before* deployment.
//!
//! This pass does that at install time. Per task it derives the
//! worst-case energy of one atomic execution attempt —
//!
//! - the **declared body cost** ([`artemis_core::app::TaskCostDecl`]):
//!   compute cycles and low-power idle time priced through the
//!   device's [`CostModel`], plus self-priced extras (peripheral
//!   samples, radio packets, channel traffic);
//! - the **monitor overhead** of the `StartTask`/`EndTask` events the
//!   runtime delivers around the body, priced from the static FRAM
//!   op/byte/cycle bounds of [`super::bounds`] through the same cost
//!   model ([`CostModel::traffic_energy`]);
//! - a constant **runtime-protocol allowance**
//!   ([`RUNTIME_ATTEMPT_OVERHEAD`]) covering the task runtime's own
//!   attempt bookkeeping (attempt counter, finish commit, scheduler
//!   advance).
//!
//! and compares it against the capacitor's usable budget
//! (`Capacitor::usable_budget()`, carried in
//! [`intermittent_sim::EnergyProfile`]).
//!
//! # Soundness: a floor and a ceiling
//!
//! The analysis computes **two** numbers per task so that each verdict
//! direction rests on a bound with the right sign:
//!
//! - the **floor** under-approximates any successful attempt: the
//!   declared body cost plus only the *arming commits* of the two
//!   events — FRAM writes the engine stages before any machine steps,
//!   which the write-through shadow cache can never absorb. If even
//!   the floor exceeds the budget, no attempt can complete on a
//!   harvester that only recharges between outages (e.g.
//!   `Harvester::FixedDelay`): **Infeasible** is an error and the
//!   install is rejected before any FRAM is allocated.
//! - the **ceiling** over-approximates a worst-case attempt: declared
//!   body cost + runtime allowance + the full *uncached* worst-case
//!   event cost (which dominates both cache modes, warm or cold). If
//!   the ceiling fits under the budget less the configured margin, the
//!   task is **Feasible**. Between the two — the ceiling crosses the
//!   margin threshold but the floor still fits — the verdict is
//!   **Marginal**, surfaced as a warning: the task may complete, but
//!   the static guarantee is gone.
//!
//! Declarations are trusted as *lower* bounds on the body ("the draw
//! of one successful execution"), so an understated declaration can
//! weaken a warning but never manufacture a false Infeasible error.
//! The exactness of the monitor-side pricing is pinned against the
//! simulator's measured per-attempt draw by
//! `bounds_model_matches_engine`-style energy tests in
//! `artemis-monitor`, and verdict/outcome agreement is swept by the
//! `energy` benchmark in `artemis-bench`.

use artemis_core::app::{AppGraph, TaskCostDecl, TaskId};
use artemis_core::event::EventKind;
use artemis_spec::Diagnostic;
use intermittent_sim::{CostModel, Energy, EnergyProfile};

use crate::analysis::bounds::{BatchBounds, EventCost, SuiteBounds};
use crate::compile::CompiledSuite;

/// Constant allowance for the task runtime's own per-attempt FRAM
/// bookkeeping outside the monitor engine: the attempt-counter
/// read/write, the multi-entry finish commit, and the scheduler
/// advance commit. Sized generously above the measured protocol cost
/// on the default cost model (≈1.1 µJ) so the ceiling stays an
/// over-approximation; the margin semantics absorb the slack.
pub const RUNTIME_ATTEMPT_OVERHEAD: Energy = Energy::from_nano_joules(2_500);

/// Energy of one worst-case uncached event delivery under `cost`.
/// Write accesses are priced at the energy meter's billing granularity
/// ([`EventCost::billed_writes`]), which the monitor crate pins
/// against the simulator's measured draw.
pub fn event_energy(cost: &EventCost, model: &CostModel) -> Energy {
    model.traffic_energy(
        cost.reads,
        cost.read_bytes,
        cost.billed_writes,
        cost.write_bytes,
        cost.cycles,
    )
}

/// Energy of one worst-case event delivery with the volatile shadow
/// cache warm (`CacheMode::Enabled`, steady state). Writes and cycles
/// are identical to the uncached case; only cacheable input reads
/// disappear.
pub fn event_energy_cached(cost: &EventCost, model: &CostModel) -> Energy {
    model.traffic_energy(
        cost.cached_reads,
        cost.cached_read_bytes,
        cost.billed_writes,
        cost.write_bytes,
        cost.cycles,
    )
}

/// Energy of the arming commit alone — the write-only monitor floor
/// every delivered event pays in either cache mode.
pub fn arming_energy(cost: &EventCost, model: &CostModel) -> Energy {
    model.traffic_energy(0, 0, cost.arming_writes, cost.arming_write_bytes, 0)
}

/// Energy of one worst-case uncached full batch under `bounds`.
pub fn batch_energy(bounds: &BatchBounds, model: &CostModel) -> Energy {
    model.traffic_energy(
        bounds.reads,
        bounds.read_bytes,
        bounds.writes,
        bounds.write_bytes,
        bounds.cycles,
    )
}

/// Energy of one worst-case warm-cache full batch (every batch commit
/// is sparse, so the warm read traffic is zero).
pub fn batch_energy_cached(bounds: &BatchBounds, model: &CostModel) -> Energy {
    model.traffic_energy(
        bounds.cached_reads,
        bounds.cached_read_bytes,
        bounds.writes,
        bounds.write_bytes,
        bounds.cycles,
    )
}

/// Energy of one declared task body execution priced through `model`:
/// compute cycles + low-power idle + self-priced extras.
pub fn body_energy(decl: &TaskCostDecl, model: &CostModel) -> Energy {
    model
        .energy_per_cycle
        .saturating_mul(decl.compute_cycles)
        .saturating_add(Energy::from_power(model.idle_power_nanowatts, decl.idle))
        .saturating_add(Energy::from_pico_joules(decl.extra_energy_pj))
}

/// Static forward-progress verdict for one task.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The worst-case attempt fits under the budget with margin.
    Feasible,
    /// The worst-case attempt crosses the margin threshold but the
    /// floor still fits: the task may complete, without guarantee.
    Marginal,
    /// Even the under-approximated attempt exceeds the budget: no
    /// attempt can ever complete on a between-outages harvester.
    Infeasible,
}

/// Per-task result of the energy feasibility analysis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TaskFeasibility {
    /// Dense task id.
    pub task: u32,
    /// Source-level task name.
    pub name: String,
    /// Under-approximation of any successful attempt: declared body
    /// cost + the two events' arming commits only.
    pub floor: Energy,
    /// Over-approximation of the worst-case attempt: declared body
    /// cost + [`RUNTIME_ATTEMPT_OVERHEAD`] + full uncached
    /// `StartTask` + `EndTask` worst cases.
    pub ceiling: Energy,
    /// The verdict `floor`/`ceiling` imply under the profile's budget
    /// and margin.
    pub verdict: Verdict,
}

/// Computes per-task attempt-energy bounds and verdicts for every task
/// of `app` against `profile`.
///
/// `bounds` must be the [`suite_bounds`](super::suite_bounds) of
/// `compiled`; passing bounds of a different suite yields nonsense
/// verdicts (but no unsafety — everything here is arithmetic).
pub fn task_feasibility(
    compiled: &CompiledSuite,
    bounds: &SuiteBounds,
    app: &AppGraph,
    profile: &EnergyProfile,
) -> Vec<TaskFeasibility> {
    let threshold = profile.margin_threshold();
    let key = |kind: EventKind, task: u32| {
        bounds
            .per_key
            .iter()
            .find(|c| c.kind == kind && c.task == Some(task))
    };

    (0..compiled.task_count() as u32)
        .map(|t| {
            let body = body_energy(&app.task_cost(TaskId(t)), &profile.model);
            let mut floor = body;
            let mut ceiling = body.saturating_add(RUNTIME_ATTEMPT_OVERHEAD);
            for kind in [EventKind::StartTask, EventKind::EndTask] {
                if let Some(cost) = key(kind, t) {
                    floor = floor.saturating_add(arming_energy(cost, &profile.model));
                    ceiling = ceiling.saturating_add(event_energy(cost, &profile.model));
                }
            }
            let verdict = if floor > profile.budget {
                Verdict::Infeasible
            } else if ceiling > threshold {
                Verdict::Marginal
            } else {
                Verdict::Feasible
            };
            TaskFeasibility {
                task: t,
                name: compiled.task_name(t).to_string(),
                floor,
                ceiling,
                verdict,
            }
        })
        .collect()
}

/// Cross-checks every task's attempt energy against the device energy
/// profile. Infeasible tasks produce errors (the install must be
/// rejected before FRAM allocation); Marginal tasks produce warnings.
pub fn check_energy(
    compiled: &CompiledSuite,
    bounds: &SuiteBounds,
    app: &AppGraph,
    profile: &EnergyProfile,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in task_feasibility(compiled, bounds, app, profile) {
        match f.verdict {
            Verdict::Infeasible => diags.push(Diagnostic::error(
                "energy",
                format!("task {}", f.name),
                format!(
                    "one atomic attempt needs at least {} but the capacitor buffers only {}: \
                     the task can never complete (every attempt browns out and replays)",
                    f.floor, profile.budget
                ),
            )),
            Verdict::Marginal => diags.push(Diagnostic::warning(
                "energy",
                format!("task {}", f.name),
                format!(
                    "worst-case attempt energy {} is within {}% of the {} budget \
                     (margin threshold {})",
                    f.ceiling,
                    profile.margin_percent,
                    profile.budget,
                    profile.margin_threshold()
                ),
            )),
            Verdict::Feasible => {}
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_core::app::{AppGraph, AppGraphBuilder};
    use artemis_core::time::SimDuration;

    fn app_with_costs(cycles: u64) -> AppGraph {
        let mut b = AppGraphBuilder::new();
        let a = b.task("a");
        let s = b.task("b");
        b.task_cost(
            a,
            TaskCostDecl {
                compute_cycles: cycles,
                idle: SimDuration::from_millis(1),
                extra_energy_pj: 0,
                extra_time_us: 0,
            },
        );
        b.path(&[a, s]);
        b.build().unwrap()
    }

    fn compiled(app: &AppGraph) -> CompiledSuite {
        let suite = crate::compile("a { maxTries: 2 onFail: skipPath; }", app).unwrap();
        CompiledSuite::compile(&suite, app).unwrap()
    }

    #[test]
    fn floor_is_below_ceiling_and_tracks_declared_cost() {
        let app = app_with_costs(10_000);
        let cs = compiled(&app);
        let b = crate::analysis::suite_bounds(&cs);
        let profile = EnergyProfile::with_budget(Energy::from_micro_joules(800));
        let fs = task_feasibility(&cs, &b, &app, &profile);
        assert_eq!(fs.len(), 2);
        let fa = &fs[0];
        assert_eq!(fa.name, "a");
        assert!(fa.floor < fa.ceiling, "{fa:?}");
        // The floor includes the declared body (10k cycles ≈ 3.6 µJ +
        // 1 ms idle ≈ 3 nJ) plus two write-only arming commits.
        assert!(fa.floor > Energy::from_micro_joules(3));
        assert_eq!(fa.verdict, Verdict::Feasible);
        // The undeclared task still pays monitor + runtime overhead.
        let fb = &fs[1];
        assert!(fb.floor > Energy::from_pico_joules(0));
        assert!(fb.floor < fa.floor);
    }

    #[test]
    fn verdicts_degrade_as_the_budget_shrinks() {
        let app = app_with_costs(100_000);
        let cs = compiled(&app);
        let b = crate::analysis::suite_bounds(&cs);
        let fa = |budget| {
            let profile = EnergyProfile::with_budget(budget);
            task_feasibility(&cs, &b, &app, &profile)[0].clone()
        };
        // 100k cycles ≈ 36 µJ of compute alone.
        let generous = fa(Energy::from_micro_joules(800));
        assert_eq!(generous.verdict, Verdict::Feasible);
        // Just above the ceiling but within the 10% margin band.
        let tight = fa(Energy::from_pico_joules(
            generous.ceiling.as_pico_joules() + 1,
        ));
        assert_eq!(tight.verdict, Verdict::Marginal);
        // Below the floor: impossible.
        let hopeless = fa(Energy::from_pico_joules(
            generous.floor.as_pico_joules() - 1,
        ));
        assert_eq!(hopeless.verdict, Verdict::Infeasible);
        // Monotone: floor ≤ ceiling regardless of budget.
        assert!(generous.floor <= generous.ceiling);
    }

    #[test]
    fn check_energy_maps_verdicts_to_diagnostics() {
        let app = app_with_costs(100_000);
        let cs = compiled(&app);
        let b = crate::analysis::suite_bounds(&cs);
        let ok = EnergyProfile::with_budget(Energy::from_micro_joules(800));
        assert!(check_energy(&cs, &b, &app, &ok).is_empty());

        let starved = EnergyProfile::with_budget(Energy::from_micro_joules(1));
        let diags = check_energy(&cs, &b, &app, &starved);
        assert!(
            diags
                .iter()
                .any(|d| d.is_error() && d.pass == "energy" && d.subject.contains("task a")),
            "{diags:?}"
        );

        let fs = task_feasibility(&cs, &b, &app, &ok);
        let marginal = EnergyProfile::with_budget(Energy::from_pico_joules(
            fs[0].ceiling.as_pico_joules() + 1,
        ));
        let diags = check_energy(&cs, &b, &app, &marginal);
        assert!(
            diags.iter().any(|d| !d.is_error() && d.pass == "energy"),
            "{diags:?}"
        );
    }

    #[test]
    fn cached_event_energy_never_exceeds_uncached() {
        let app = app_with_costs(0);
        let cs = compiled(&app);
        let b = crate::analysis::suite_bounds(&cs);
        let model = CostModel::msp430fr5994();
        for cost in &b.per_key {
            assert!(event_energy_cached(cost, &model) <= event_energy(cost, &model));
            assert!(arming_energy(cost, &model) <= event_energy_cached(cost, &model));
        }
        let b4 = crate::analysis::batch_bounds(&cs, 4);
        assert!(batch_energy_cached(&b4, &model) <= batch_energy(&b4, &model));
    }

    /// The packed layout must strictly tighten every energy ceiling
    /// the feasibility gate prices against the tagged baseline: fewer
    /// journalled bytes per commit means a lower worst-case event cost
    /// at the same op counts, and the task verdicts inherit the
    /// tighter bound (the default [`suite_bounds`] is packed, so this
    /// is the ceiling installs are actually gated on).
    #[test]
    fn packed_layout_tightens_the_ceilings() {
        use crate::analysis::LayoutKind;
        let app = app_with_costs(10_000);
        let cs = compiled(&app);
        let model = CostModel::msp430fr5994();
        let packed = crate::analysis::suite_bounds_for(&cs, LayoutKind::Packed);
        let tagged = crate::analysis::suite_bounds_for(&cs, LayoutKind::Tagged);
        assert_eq!(packed.per_key.len(), tagged.per_key.len());
        for (p, t) in packed.per_key.iter().zip(tagged.per_key.iter()) {
            assert!(
                event_energy(p, &model) < event_energy(t, &model),
                "uncached ceiling must shrink: {p:?} vs {t:?}"
            );
            assert!(
                event_energy_cached(p, &model) < event_energy_cached(t, &model),
                "cached ceiling must shrink: {p:?} vs {t:?}"
            );
        }
        // The install gate's per-task ceilings inherit the tightening,
        // and the default bounds are the packed ones.
        let profile = EnergyProfile::with_budget(Energy::from_micro_joules(800));
        let fp = task_feasibility(&cs, &packed, &app, &profile);
        let ft = task_feasibility(&cs, &tagged, &app, &profile);
        for (p, t) in fp.iter().zip(ft.iter()) {
            assert!(
                p.ceiling < t.ceiling,
                "{}: {:?} vs {:?}",
                p.name,
                p.ceiling,
                t.ceiling
            );
        }
        assert_eq!(crate::analysis::suite_bounds(&cs).per_key, packed.per_key);
    }

    /// The bytecode optimizer must strictly tighten the energy
    /// ceilings wherever it shrinks a key's static step cost — and can
    /// never loosen any ceiling. Fused guards on the `maxTries` start
    /// key lower the cycle bound, so the feasibility gate prices a
    /// genuinely smaller worst case under `OptLevel::Full`, with zero
    /// risk: the unoptimized oracle's ceilings stay an upper bound.
    #[test]
    fn optimizer_tightens_the_ceilings() {
        use crate::opt::OptLevel;
        let app = app_with_costs(10_000);
        let suite = crate::compile("a { maxTries: 2 onFail: skipPath; }", &app).unwrap();
        let full = CompiledSuite::compile_with(&suite, &app, OptLevel::Full).unwrap();
        let none = CompiledSuite::compile_with(&suite, &app, OptLevel::None).unwrap();
        let model = CostModel::msp430fr5994();
        let bf = crate::analysis::suite_bounds(&full);
        let bn = crate::analysis::suite_bounds(&none);
        assert_eq!(bf.per_key.len(), bn.per_key.len());
        let mut strictly_tighter = 0usize;
        for (f, n) in bf.per_key.iter().zip(bn.per_key.iter()) {
            assert_eq!((f.kind, f.task), (n.kind, n.task));
            assert!(
                event_energy(f, &model) <= event_energy(n, &model),
                "optimization loosened a ceiling: {f:?} vs {n:?}"
            );
            assert!(event_energy_cached(f, &model) <= event_energy_cached(n, &model));
            // Keys that dispatch the guard-bearing transitions must
            // price strictly below the unoptimized oracle.
            if full.machines()[0].dispatch_len(f.kind, f.task.unwrap_or(u32::MAX)) > 0 {
                assert!(
                    event_energy(f, &model) < event_energy(n, &model),
                    "dispatching key did not tighten: {f:?} vs {n:?}"
                );
                strictly_tighter += 1;
            }
        }
        assert!(strictly_tighter > 0, "no key tightened at all");
        // The install gate's per-task ceilings inherit the tightening.
        let profile = EnergyProfile::with_budget(Energy::from_micro_joules(800));
        let ff = task_feasibility(&full, &bf, &app, &profile);
        let fn_ = task_feasibility(&none, &bn, &app, &profile);
        for (f, n) in ff.iter().zip(fn_.iter()) {
            assert!(
                f.ceiling <= n.ceiling,
                "{}: {:?} vs {:?}",
                f.name,
                f.ceiling,
                n.ceiling
            );
        }
        let fa = ff.iter().find(|f| f.name == "a").unwrap();
        let na = fn_.iter().find(|f| f.name == "a").unwrap();
        assert!(
            fa.ceiling < na.ceiling,
            "task a's ceiling must strictly tighten"
        );
    }
}
