//! Pass 1: the bytecode verifier.
//!
//! [`crate::compile::CompiledMachine::step`] executes bytecode with raw
//! indexing — an out-of-bounds register, slot, literal or transition
//! index panics, and a backward jump loops forever. The compiler never
//! emits such programs, but the engine also accepts hand-assembled ones
//! (via [`crate::compile::RawMachine`]) and must survive arbitrary
//! mutations of compiled images. This pass proves, before a program
//! touches FRAM:
//!
//! - every transition's `from`/`to` state index, bytecode range and
//!   dispatch-table entry is in bounds;
//! - every instruction operand (register, slot, literal) is in bounds
//!   for the machine's declared sizes;
//! - every jump is **strictly forward** and lands inside `(pc, end]` of
//!   its range — which bounds execution time by the range length
//!   (termination, eBPF-style);
//! - every guard leaves a provably-boolean value in register 0, via a
//!   forward abstract interpretation with state merging at jump
//!   targets.
//!
//! The guarantee is one-sided by design: acceptance implies safe
//! execution; rejection of a program that would happen to run safely is
//! fine (the mutation fuzzers exercise exactly this asymmetry).
//! Runtime *evaluation* errors (type mismatches, missing `depData`) are
//! not safety hazards — `step` surfaces them as recoverable `Err`s —
//! so operand typing beyond the guard-result check is deliberately
//! permissive.

use core::ops::Range;

use artemis_spec::Diagnostic;

use crate::compile::{CompiledMachine, Op};
use crate::expr::{BinOp, VarType};

/// The source-machine facts a compiled program is verified against.
pub struct MachineEnv<'a> {
    /// Machine name, used in diagnostics.
    pub name: &'a str,
    /// Number of declared states; bounds `from`/`to`/`initial_state`.
    pub state_count: usize,
    /// Declared variable types in slot order; fixes the slot count and
    /// types `LoadVar` results (slot types are runtime-invariant:
    /// `StoreVar` coerces to the stored value's existing type).
    pub var_types: &'a [VarType],
}

/// What the verifier statically knows about one scratch register.
///
/// Registers persist across `exec` calls, so "unset" really means
/// "holds an arbitrary stale value" — safe to read (worst case a
/// recoverable evaluation error), but never provably boolean.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AbsTy {
    /// Not written on this path; holds a stale value of unknown type.
    Unset,
    /// Definitely this type on every path reaching here.
    Known(VarType),
    /// Written, but with differing types across merged paths.
    Any,
}

fn join(a: AbsTy, b: AbsTy) -> AbsTy {
    if a == b {
        a
    } else {
        AbsTy::Any
    }
}

fn join_states(a: &mut [AbsTy], b: &[AbsTy]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x = join(*x, *y);
    }
}

/// Verifies one compiled machine against its source-machine facts.
/// Returns all findings; an empty result certifies that
/// [`CompiledMachine::step`] cannot index out of bounds or fail to
/// terminate on any event, for any `(state, vars, regs)` of the
/// declared shapes.
pub fn verify_machine(m: &CompiledMachine, env: &MachineEnv) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let subject = format!("machine `{}`", env.name);
    let err = |diags: &mut Vec<Diagnostic>, msg: String| {
        diags.push(Diagnostic::error("verifier", subject.clone(), msg));
    };

    if m.var_count != env.var_types.len() {
        err(
            &mut diags,
            format!(
                "program declares {} variable slots but the source machine has {}",
                m.var_count,
                env.var_types.len()
            ),
        );
        return diags;
    }
    if m.max_regs > u16::MAX as usize + 1 {
        err(
            &mut diags,
            format!(
                "register file of {} exceeds the u16 operand space",
                m.max_regs
            ),
        );
        return diags;
    }
    if env.state_count > 0 && m.initial_state as usize >= env.state_count {
        err(
            &mut diags,
            format!(
                "initial state {} out of range ({} states)",
                m.initial_state, env.state_count
            ),
        );
    }

    // Dispatch tables may only reference existing transitions.
    let tcount = m.transitions.len();
    for (k, kind) in ["startTask", "endTask"].into_iter().enumerate() {
        for (task, list) in m.dispatch[k].iter().enumerate() {
            for &ti in list {
                if ti as usize >= tcount {
                    err(
                        &mut diags,
                        format!(
                            "dispatch[{kind}][task {task}] references transition #{ti}, \
                             but only {tcount} exist"
                        ),
                    );
                }
            }
        }
        for &ti in &m.wildcard[k] {
            if ti as usize >= tcount {
                err(
                    &mut diags,
                    format!(
                        "wildcard[{kind}] references transition #{ti}, but only {tcount} exist"
                    ),
                );
            }
        }
    }

    for (ti, t) in m.transitions.iter().enumerate() {
        if t.from as usize >= env.state_count || t.to as usize >= env.state_count {
            err(
                &mut diags,
                format!(
                    "transition #{ti}: state indices {}→{} out of range ({} states)",
                    t.from, t.to, env.state_count
                ),
            );
        }
        if let Some(g) = &t.guard {
            if m.max_regs == 0 {
                err(
                    &mut diags,
                    format!(
                        "transition #{ti}: guard needs register 0 but the register file is empty"
                    ),
                );
                continue;
            }
            match check_range(g, m.code.len()) {
                Err(msg) => err(&mut diags, format!("transition #{ti} guard: {msg}")),
                Ok(()) => {
                    if let Err(msg) = verify_range(m, env, g, true) {
                        err(&mut diags, format!("transition #{ti} guard: {msg}"));
                    }
                }
            }
        }
        match check_range(&t.body, m.code.len()) {
            Err(msg) => err(&mut diags, format!("transition #{ti} body: {msg}")),
            Ok(()) => {
                if let Err(msg) = verify_range(m, env, &t.body, false) {
                    err(&mut diags, format!("transition #{ti} body: {msg}"));
                }
            }
        }
    }

    diags
}

fn check_range(r: &Range<u32>, code_len: usize) -> Result<(), String> {
    if r.start > r.end || r.end as usize > code_len {
        return Err(format!(
            "bytecode range {}..{} invalid for {code_len} instructions",
            r.start, r.end
        ));
    }
    Ok(())
}

/// Abstract interpretation of one instruction range: checks operand
/// bounds and forward-only jumps on every reachable instruction, merges
/// register states at jump targets, and (for guards) requires register
/// 0 to be `Known(Bool)` at every exit.
fn verify_range(
    m: &CompiledMachine,
    env: &MachineEnv,
    range: &Range<u32>,
    is_guard: bool,
) -> Result<(), String> {
    let start = range.start as usize;
    let end = range.end as usize;
    let len = end - start;

    let reg = |r: u16| -> Result<usize, String> {
        if (r as usize) < m.max_regs {
            Ok(r as usize)
        } else {
            Err(format!(
                "register r{r} out of range ({} registers)",
                m.max_regs
            ))
        }
    };

    // `incoming[i]` is the merged register state for instruction
    // `start + i`; index `len` is the range-exit pseudo-target.
    let mut incoming: Vec<Option<Vec<AbsTy>>> = vec![None; len + 1];
    incoming[0] = Some(vec![AbsTy::Unset; m.max_regs]);
    let mut cur: Option<Vec<AbsTy>> = None;

    for pc in start..end {
        let idx = pc - start;
        cur = match (cur.take(), incoming[idx].take()) {
            (None, s) | (s, None) => s,
            (Some(mut a), Some(b)) => {
                join_states(&mut a, &b);
                Some(a)
            }
        };
        // No path reaches this instruction: dead code inside the range
        // never executes, so its operands are irrelevant to safety.
        let Some(mut st) = cur.take() else {
            continue;
        };

        // Records a branch state arriving at `target`.
        let branch = |target: u32,
                      state: &[AbsTy],
                      incoming: &mut Vec<Option<Vec<AbsTy>>>|
         -> Result<(), String> {
            let t = target as usize;
            if t <= pc || t > end {
                return Err(format!(
                    "op {pc}: jump target {t} not strictly forward within (..={end}]"
                ));
            }
            match &mut incoming[t - start] {
                Some(existing) => join_states(existing, state),
                slot @ None => *slot = Some(state.to_vec()),
            }
            Ok(())
        };

        let mut fallthrough = true;
        match m.code[pc] {
            Op::Const { dst, lit } => {
                let l = lit as usize;
                if l >= m.lits.len() {
                    return Err(format!(
                        "op {pc}: literal #{lit} out of range ({} literals)",
                        m.lits.len()
                    ));
                }
                st[reg(dst)?] = AbsTy::Known(m.lits[l].ty());
            }
            Op::LoadVar { dst, slot } => {
                let s = slot as usize;
                if s >= m.var_count {
                    return Err(format!(
                        "op {pc}: variable slot {slot} out of range ({} slots)",
                        m.var_count
                    ));
                }
                st[reg(dst)?] = AbsTy::Known(env.var_types[s]);
            }
            Op::LoadEventTime { dst } => st[reg(dst)?] = AbsTy::Known(VarType::Time),
            Op::LoadDepData { dst } => st[reg(dst)?] = AbsTy::Known(VarType::Float),
            Op::LoadEnergy { dst } => st[reg(dst)?] = AbsTy::Known(VarType::Int),
            Op::Bin { op, dst, a, b } => {
                let (a, b) = (reg(a)?, reg(b)?);
                let result = match op {
                    BinOp::And
                    | BinOp::Or
                    | BinOp::Lt
                    | BinOp::Le
                    | BinOp::Gt
                    | BinOp::Ge
                    | BinOp::Eq
                    | BinOp::Ne => AbsTy::Known(VarType::Bool),
                    // `apply` keeps the left operand's type for
                    // arithmetic; a mismatch errors at runtime (safe).
                    BinOp::Add | BinOp::Sub => match (st[a], st[b]) {
                        (AbsTy::Known(x), AbsTy::Known(y)) if x == y => AbsTy::Known(x),
                        _ => AbsTy::Any,
                    },
                };
                st[reg(dst)?] = result;
            }
            Op::Not { dst, src } => {
                // A non-bool source errors out at runtime, so past this
                // instruction the source was boolean.
                st[reg(src)?] = AbsTy::Known(VarType::Bool);
                st[reg(dst)?] = AbsTy::Known(VarType::Bool);
            }
            Op::AssertBool { src } => st[reg(src)?] = AbsTy::Known(VarType::Bool),
            Op::JumpIfFalse { src, target } | Op::JumpIfTrue { src, target } => {
                st[reg(src)?] = AbsTy::Known(VarType::Bool);
                branch(target, &st, &mut incoming)?;
            }
            Op::Jump { target } => {
                branch(target, &st, &mut incoming)?;
                fallthrough = false;
            }
            Op::StoreVar { slot, src } => {
                let s = slot as usize;
                if s >= m.var_count {
                    return Err(format!(
                        "op {pc}: variable slot {slot} out of range ({} slots)",
                        m.var_count
                    ));
                }
                reg(src)?;
            }
            Op::CmpBranch {
                dst, a, b, target, ..
            } => {
                // A non-bool result errors out at runtime (regardless
                // of the operator), so every surviving path — branch
                // taken or not — leaves a boolean in `dst`, exactly as
                // for `Not`/`AssertBool`.
                reg(a)?;
                reg(b)?;
                st[reg(dst)?] = AbsTy::Known(VarType::Bool);
                branch(target, &st, &mut incoming)?;
            }
            Op::LoadCmpBranch {
                dst,
                slot,
                lit,
                target,
                ..
            } => {
                let s = slot as usize;
                if s >= m.var_count {
                    return Err(format!(
                        "op {pc}: variable slot {slot} out of range ({} slots)",
                        m.var_count
                    ));
                }
                let l = lit as usize;
                if l >= m.lits.len() {
                    return Err(format!(
                        "op {pc}: literal #{lit} out of range ({} literals)",
                        m.lits.len()
                    ));
                }
                st[reg(dst)?] = AbsTy::Known(VarType::Bool);
                branch(target, &st, &mut incoming)?;
            }
            Op::ConstStore { slot, lit } => {
                let s = slot as usize;
                if s >= m.var_count {
                    return Err(format!(
                        "op {pc}: variable slot {slot} out of range ({} slots)",
                        m.var_count
                    ));
                }
                let l = lit as usize;
                if l >= m.lits.len() {
                    return Err(format!(
                        "op {pc}: literal #{lit} out of range ({} literals)",
                        m.lits.len()
                    ));
                }
            }
        }
        cur = fallthrough.then_some(st);
    }

    if is_guard {
        let exit = match (cur, incoming[len].take()) {
            (None, s) | (s, None) => s,
            (Some(mut a), Some(b)) => {
                join_states(&mut a, &b);
                Some(a)
            }
        };
        match exit {
            Some(st) if st[0] == AbsTy::Known(VarType::Bool) => {}
            Some(st) => {
                return Err(format!(
                    "guard does not leave a provable boolean in register 0 (found {:?})",
                    st[0]
                ))
            }
            None => return Err("guard range has no reachable exit".to_string()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{CompiledSuite, RawMachine};
    use crate::expr::{Expr, Value};
    use crate::fsm::{StateMachine, Stmt, TaskPat, Transition, Trigger};
    use artemis_core::app::{AppGraph, AppGraphBuilder};

    fn app() -> AppGraph {
        let mut b = AppGraphBuilder::new();
        let a = b.task("a");
        let s = b.task("b");
        b.path(&[a, s]);
        b.build().unwrap()
    }

    fn counting_machine() -> StateMachine {
        let mut m = StateMachine::new("m", "a");
        m.add_var("i", VarType::Int, Value::Int(0));
        m.add_var("ok", VarType::Bool, Value::Bool(true));
        m.add_state("S");
        m.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::Start(TaskPat::named("a")),
            guard: Some(Expr::and(
                Expr::var("ok"),
                Expr::bin(BinOp::Lt, Expr::var("i"), Expr::int(5)),
            )),
            body: vec![Stmt::Assign(
                "i".into(),
                Expr::bin(BinOp::Add, Expr::var("i"), Expr::int(1)),
            )],
            emit: None,
        });
        m
    }

    fn env_of(m: &StateMachine) -> (String, usize, Vec<VarType>) {
        (
            m.name.clone(),
            m.states.len(),
            m.vars.iter().map(|v| v.ty).collect(),
        )
    }

    fn verify(m: &StateMachine) -> (RawMachine, Vec<Diagnostic>) {
        let c = crate::CompiledMachine::compile(m, &app()).unwrap();
        let (name, state_count, var_types) = env_of(m);
        let diags = verify_machine(
            &c,
            &MachineEnv {
                name: &name,
                state_count,
                var_types: &var_types,
            },
        );
        (c.to_raw(), diags)
    }

    fn verify_raw(m: &StateMachine, raw: RawMachine) -> Vec<Diagnostic> {
        let (name, state_count, var_types) = env_of(m);
        verify_machine(
            &crate::CompiledMachine::from_raw(raw),
            &MachineEnv {
                name: &name,
                state_count,
                var_types: &var_types,
            },
        )
    }

    #[test]
    fn compiler_output_verifies_cleanly() {
        let m = counting_machine();
        let (_, diags) = verify(&m);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn whole_sample_suite_verifies_cleanly() {
        let mut b = AppGraphBuilder::new();
        let body = b.task("bodyTemp");
        let avg = b.task_with_var("calcAvg", "avgTemp");
        let heart = b.task("heartRate");
        let accel = b.task("accel");
        let classify = b.task("classify");
        let mic = b.task("micSense");
        let filter = b.task("filter");
        let send = b.task("send");
        b.path(&[body, avg, heart, send]);
        b.path(&[accel, classify, send]);
        b.path(&[mic, filter, send]);
        let app = b.build().unwrap();
        let suite = crate::compile(artemis_spec::samples::FIGURE5, &app).unwrap();
        let cs = CompiledSuite::compile(&suite, &app).unwrap();
        for (m, cm) in suite.machines().iter().zip(cs.machines()) {
            let (name, state_count, var_types) = env_of(m);
            let diags = verify_machine(
                cm,
                &MachineEnv {
                    name: &name,
                    state_count,
                    var_types: &var_types,
                },
            );
            assert!(diags.is_empty(), "machine {}: {diags:?}", m.name);
        }
    }

    #[test]
    fn out_of_bounds_slot_is_rejected() {
        let m = counting_machine();
        let (mut raw, _) = verify(&m);
        for op in raw.code.iter_mut() {
            if let Op::LoadVar { slot, .. } = op {
                *slot = 99;
            }
        }
        let diags = verify_raw(&m, raw);
        assert!(
            diags.iter().any(|d| d.message.contains("slot 99")),
            "{diags:?}"
        );
    }

    #[test]
    fn backward_jump_is_rejected() {
        let m = counting_machine();
        let (mut raw, _) = verify(&m);
        let mut mutated = false;
        for op in raw.code.iter_mut() {
            if let Op::JumpIfFalse { target, .. } = op {
                *target = 0;
                mutated = true;
            }
        }
        assert!(
            mutated,
            "compiled guard should contain a short-circuit jump"
        );
        let diags = verify_raw(&m, raw);
        assert!(
            diags.iter().any(|d| d.message.contains("forward")),
            "{diags:?}"
        );
    }

    #[test]
    fn out_of_range_transition_state_is_rejected() {
        let m = counting_machine();
        let (mut raw, _) = verify(&m);
        raw.transitions[0].to = 7;
        let diags = verify_raw(&m, raw);
        assert!(
            diags.iter().any(|d| d.message.contains("out of range")),
            "{diags:?}"
        );
    }

    #[test]
    fn dangling_dispatch_entry_is_rejected() {
        let m = counting_machine();
        let (mut raw, _) = verify(&m);
        raw.dispatch[0][0].push(9);
        let diags = verify_raw(&m, raw);
        assert!(
            diags.iter().any(|d| d.message.contains("transition #9")),
            "{diags:?}"
        );
    }

    #[test]
    fn non_boolean_guard_result_is_rejected() {
        let mut m = StateMachine::new("m", "a");
        m.add_var("i", VarType::Int, Value::Int(0));
        m.add_state("S");
        m.transitions.push(Transition {
            from: 0,
            to: 0,
            trigger: Trigger::Any,
            guard: Some(Expr::bin(BinOp::Lt, Expr::var("i"), Expr::int(5))),
            body: vec![],
            emit: None,
        });
        // Compile unoptimized so the comparison stays a plain `Bin`
        // (the optimizer would fuse it into a `LoadCmpBranch`, whose
        // result register is boolean by construction).
        let c =
            crate::CompiledMachine::compile_with(&m, &app(), crate::opt::OptLevel::None).unwrap();
        let mut raw = c.to_raw();
        // Rewrite the guard's comparison into an addition: register 0
        // now holds an int at guard exit.
        for op in raw.code.iter_mut() {
            if let Op::Bin { op: o, .. } = op {
                *o = BinOp::Add;
            }
        }
        let diags = verify_raw(&m, raw);
        assert!(
            diags.iter().any(|d| d.message.contains("boolean")),
            "{diags:?}"
        );
    }

    #[test]
    fn truncated_code_is_rejected() {
        let m = counting_machine();
        let (mut raw, _) = verify(&m);
        raw.code.truncate(1);
        let diags = verify_raw(&m, raw);
        assert!(!diags.is_empty());
    }

    #[test]
    fn var_count_mismatch_is_rejected() {
        let m = counting_machine();
        let (mut raw, _) = verify(&m);
        raw.var_count = 5;
        let diags = verify_raw(&m, raw);
        assert!(
            diags.iter().any(|d| d.message.contains("variable slots")),
            "{diags:?}"
        );
    }
}
