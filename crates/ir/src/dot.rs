//! Graphviz (DOT) export of monitor state machines — the tool-rendered
//! equivalent of the paper's Figure 7 diagrams.
//!
//! ```text
//! cargo run --example spec_compiler | …    # or:
//! artemis compile spec --paths a>b --emit ir | …
//! dot -Tsvg monitor.dot -o monitor.svg
//! ```

use core::fmt::Write as _;

use crate::fsm::{MonitorSuite, StateMachine, Trigger};
use crate::print::{expr, stmt};

/// Renders one machine as a DOT digraph.
pub fn machine_to_dot(m: &StateMachine) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", m.name);
    let _ = writeln!(out, "    rankdir=LR;");
    let _ = writeln!(out, "    node [shape=circle, fontname=\"monospace\"];");
    let _ = writeln!(out, "    edge [fontname=\"monospace\", fontsize=10];");
    let _ = writeln!(
        out,
        "    label=\"{} (task {})\"; labelloc=t;",
        m.name, m.task
    );

    // An invisible entry arrow into the initial state.
    let _ = writeln!(out, "    __start [shape=point];");
    let _ = writeln!(out, "    __start -> \"{}\";", m.states[m.initial as usize]);
    for s in &m.states {
        let _ = writeln!(out, "    \"{s}\";");
    }
    for t in &m.transitions {
        let mut label = trigger_label(&t.trigger);
        if let Some(g) = &t.guard {
            let _ = write!(label, "\\n[{}]", escape(&expr(g)));
        }
        if !t.body.is_empty() {
            let body: Vec<String> = t.body.iter().map(|s| escape(&stmt(s))).collect();
            let _ = write!(label, "\\n/ {}", body.join(" "));
        }
        let mut attrs = String::new();
        if let Some(e) = &t.emit {
            let _ = write!(label, "\\nFAIL {}", e.action.keyword());
            attrs.push_str(", color=red, fontcolor=red");
        }
        let _ = writeln!(
            out,
            "    \"{}\" -> \"{}\" [label=\"{label}\"{attrs}];",
            m.states[t.from as usize], m.states[t.to as usize]
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a suite as one DOT file, one cluster per machine. Node ids
/// are prefixed per machine so same-named states never collide; the
/// human-readable state name goes in the node label.
pub fn suite_to_dot(suite: &MonitorSuite) -> String {
    let mut out = String::from("digraph monitors {\n    rankdir=LR;\n    compound=true;\n");
    for (i, m) in suite.machines().iter().enumerate() {
        let _ = writeln!(out, "    subgraph cluster_{i} {{");
        let _ = writeln!(out, "        label=\"{}\";", escape(&m.name));
        let node = |s: &str| format!("m{i}_{s}");
        let _ = writeln!(out, "        {} [shape=point];", node("__start"));
        let _ = writeln!(
            out,
            "        {} -> {};",
            node("__start"),
            node(&m.states[m.initial as usize])
        );
        for s in &m.states {
            let _ = writeln!(
                out,
                "        {} [shape=circle, label=\"{}\"];",
                node(s),
                escape(s)
            );
        }
        for t in &m.transitions {
            let mut label = trigger_label(&t.trigger);
            if let Some(g) = &t.guard {
                let _ = write!(label, "\\n[{}]", escape(&expr(g)));
            }
            if !t.body.is_empty() {
                let body: Vec<String> = t.body.iter().map(|s| escape(&stmt(s))).collect();
                let _ = write!(label, "\\n/ {}", body.join(" "));
            }
            let mut attrs = String::new();
            if let Some(e) = &t.emit {
                let _ = write!(label, "\\nFAIL {}", e.action.keyword());
                attrs.push_str(", color=red, fontcolor=red");
            }
            let _ = writeln!(
                out,
                "        {} -> {} [label=\"{label}\"{attrs}];",
                node(&m.states[t.from as usize]),
                node(&m.states[t.to as usize])
            );
        }
        let _ = writeln!(out, "    }}");
    }
    out.push_str("}\n");
    out
}

fn trigger_label(t: &Trigger) -> String {
    match t {
        Trigger::Start(p) => format!("startTask({})", pat(p)),
        Trigger::End(p) => format!("endTask({})", pat(p)),
        Trigger::Any => "anyEvent".to_string(),
    }
}

fn pat(p: &crate::fsm::TaskPat) -> &str {
    match p {
        crate::fsm::TaskPat::Any => "*",
        crate::fsm::TaskPat::Named(n) => n,
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_core::app::AppGraphBuilder;

    fn suite() -> MonitorSuite {
        let mut b = AppGraphBuilder::new();
        let a = b.task("accel");
        let s = b.task("send");
        b.path(&[a, s]);
        let app = b.build().unwrap();
        crate::compile(
            "send { MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath; }",
            &app,
        )
        .unwrap()
    }

    #[test]
    fn machine_dot_has_graph_structure() {
        let suite = suite();
        let dot = machine_to_dot(&suite.machines()[0]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("rankdir=LR"));
        assert!(dot.contains("\"WaitEndB\""));
        assert!(dot.contains("\"WaitStartA\""));
        assert!(dot.contains("__start ->"), "entry arrow missing:\n{dot}");
        // Failure transitions are highlighted.
        assert!(dot.contains("color=red"));
        assert!(dot.contains("FAIL restartPath"));
        assert!(dot.contains("FAIL skipPath"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn guards_and_bodies_appear_escaped() {
        let suite = suite();
        let dot = machine_to_dot(&suite.machines()[0]);
        assert!(dot.contains("endB := t;"), "{dot}");
        assert!(dot.contains("(t - endB)"), "{dot}");
        assert!(
            !dot.contains("\n[("),
            "guards must be \\n-escaped in labels"
        );
    }

    #[test]
    fn suite_dot_wraps_clusters() {
        let suite = suite();
        let dot = suite_to_dot(&suite);
        assert!(dot.contains("subgraph cluster_0"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
