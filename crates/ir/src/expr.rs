//! The expression language of the intermediate representation.
//!
//! Guards and transition bodies compute over a small typed value
//! universe: integers, booleans, times (microsecond instants/durations)
//! and floats. Three builtins expose the event context the runtime
//! supplies: `t` (the event timestamp), `depData` (the monitored
//! variable on `EndTask` events) and `energy` (the capacitor level in
//! nanojoules, for the §4.2.2 extension property).

use core::fmt;

/// The IR's value types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VarType {
    /// Signed 64-bit integer counters.
    Int,
    /// Booleans.
    Bool,
    /// Times in microseconds (instants and durations share this type).
    Time,
    /// 64-bit floats (sensor data ranges).
    Float,
}

impl VarType {
    /// Keyword used in IR text.
    pub fn keyword(self) -> &'static str {
        match self {
            VarType::Int => "int",
            VarType::Bool => "bool",
            VarType::Time => "time",
            VarType::Float => "float",
        }
    }
}

/// A runtime value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Time in microseconds.
    Time(u64),
    /// Float.
    Float(f64),
}

impl Value {
    /// The value's type.
    pub fn ty(self) -> VarType {
        match self {
            Value::Int(_) => VarType::Int,
            Value::Bool(_) => VarType::Bool,
            Value::Time(_) => VarType::Time,
            Value::Float(_) => VarType::Float,
        }
    }

    /// The zero/false default of a type.
    pub fn default_of(ty: VarType) -> Value {
        match ty {
            VarType::Int => Value::Int(0),
            VarType::Bool => Value::Bool(false),
            VarType::Time => Value::Time(0),
            VarType::Float => Value::Float(0.0),
        }
    }

    pub(crate) fn as_bool(self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(b),
            other => Err(EvalError::TypeMismatch {
                expected: VarType::Bool,
                found: other.ty(),
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Time(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{:.1}", v)
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// Binary operators, loosest-binding last in the precedence table of
/// the IR parser.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-` (saturating for times)
    Sub,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// An expression tree.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A machine variable reference.
    Var(String),
    /// `t` — timestamp of the current event (microseconds).
    EventTime,
    /// `depData` — monitored variable on `EndTask` events.
    DepData,
    /// `energy` — capacitor level in nanojoules.
    EnergyLevel,
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

impl Expr {
    /// `lhs op rhs` without the `Box` noise.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// Time literal (microseconds).
    pub fn time(us: u64) -> Expr {
        Expr::Lit(Value::Time(us))
    }

    /// Float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Lit(Value::Float(v))
    }

    /// Variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// `a && b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::And, a, b)
    }

    /// `a || b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Or, a, b)
    }
}

/// Why evaluation failed. Validation catches these statically for
/// generated machines; hand-written IR can still hit them at runtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A variable name did not resolve.
    UnknownVar,
    /// An operator was applied to the wrong type.
    TypeMismatch {
        /// What the context required.
        expected: VarType,
        /// What was found.
        found: VarType,
    },
    /// `depData` was referenced on an event that carries none.
    NoDepData,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVar => write!(f, "unknown variable"),
            EvalError::TypeMismatch { expected, found } => write!(
                f,
                "type mismatch: expected {}, found {}",
                expected.keyword(),
                found.keyword()
            ),
            EvalError::NoDepData => write!(f, "event carries no depData"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The per-event context expressions can observe.
#[derive(Clone, Copy, Debug)]
pub struct EventCtx {
    /// Event timestamp in microseconds.
    pub time_us: u64,
    /// Monitored variable value, if the event carries one.
    pub dep_data: Option<f64>,
    /// Capacitor level in nanojoules at event time.
    pub energy_nj: u64,
}

/// Variable lookup used during evaluation.
pub trait VarEnv {
    /// Resolves a variable by name.
    fn get(&self, name: &str) -> Option<Value>;
}

impl VarEnv for Vec<(String, Value)> {
    fn get(&self, name: &str) -> Option<Value> {
        self.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Evaluates `expr` under `env` and `ctx`.
pub fn eval(expr: &Expr, env: &dyn VarEnv, ctx: &EventCtx) -> Result<Value, EvalError> {
    match expr {
        Expr::Lit(v) => Ok(*v),
        Expr::Var(name) => env.get(name).ok_or(EvalError::UnknownVar),
        Expr::EventTime => Ok(Value::Time(ctx.time_us)),
        Expr::DepData => ctx.dep_data.map(Value::Float).ok_or(EvalError::NoDepData),
        Expr::EnergyLevel => Ok(Value::Int(i64::try_from(ctx.energy_nj).unwrap_or(i64::MAX))),
        Expr::Not(inner) => Ok(Value::Bool(!eval(inner, env, ctx)?.as_bool()?)),
        Expr::Bin(op, lhs, rhs) => {
            // Short-circuit logical operators.
            match op {
                BinOp::And => {
                    return Ok(Value::Bool(
                        eval(lhs, env, ctx)?.as_bool()? && eval(rhs, env, ctx)?.as_bool()?,
                    ))
                }
                BinOp::Or => {
                    return Ok(Value::Bool(
                        eval(lhs, env, ctx)?.as_bool()? || eval(rhs, env, ctx)?.as_bool()?,
                    ))
                }
                _ => {}
            }
            let l = eval(lhs, env, ctx)?;
            let r = eval(rhs, env, ctx)?;
            apply(*op, l, r)
        }
    }
}

pub(crate) fn apply(op: BinOp, l: Value, r: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    use Value::*;

    match (l, r) {
        (Int(a), Int(b)) => Ok(match op {
            Add => Int(a.saturating_add(b)),
            Sub => Int(a.saturating_sub(b)),
            Lt => Bool(a < b),
            Le => Bool(a <= b),
            Gt => Bool(a > b),
            Ge => Bool(a >= b),
            Eq => Bool(a == b),
            Ne => Bool(a != b),
            And | Or => unreachable!("handled above"),
        }),
        (Time(a), Time(b)) => Ok(match op {
            Add => Time(a.saturating_add(b)),
            // Times subtract saturating at zero, like `SimInstant`.
            Sub => Time(a.saturating_sub(b)),
            Lt => Bool(a < b),
            Le => Bool(a <= b),
            Gt => Bool(a > b),
            Ge => Bool(a >= b),
            Eq => Bool(a == b),
            Ne => Bool(a != b),
            And | Or => unreachable!("handled above"),
        }),
        (Float(a), Float(b)) => Ok(match op {
            Add => Float(a + b),
            Sub => Float(a - b),
            Lt => Bool(a < b),
            Le => Bool(a <= b),
            Gt => Bool(a > b),
            Ge => Bool(a >= b),
            Eq => Bool(a == b),
            Ne => Bool(a != b),
            And | Or => unreachable!("handled above"),
        }),
        // Int/Float comparisons promote the int (range bounds vs data).
        (Int(a), Float(_)) => apply(op, Float(a as f64), r),
        (Float(_), Int(b)) => apply(op, l, Float(b as f64)),
        (Bool(a), Bool(b)) => Ok(match op {
            Eq => Bool(a == b),
            Ne => Bool(a != b),
            _ => {
                return Err(EvalError::TypeMismatch {
                    expected: VarType::Int,
                    found: VarType::Bool,
                })
            }
        }),
        _ => Err(EvalError::TypeMismatch {
            expected: l.ty(),
            found: r.ty(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> EventCtx {
        EventCtx {
            time_us: 1_000,
            dep_data: Some(36.5),
            energy_nj: 500,
        }
    }

    fn env() -> Vec<(String, Value)> {
        vec![
            ("i".to_string(), Value::Int(3)),
            ("start".to_string(), Value::Time(400)),
            ("flag".to_string(), Value::Bool(true)),
        ]
    }

    #[test]
    fn literals_and_vars() {
        let e = env();
        assert_eq!(eval(&Expr::int(7), &e, &ctx()).unwrap(), Value::Int(7));
        assert_eq!(eval(&Expr::var("i"), &e, &ctx()).unwrap(), Value::Int(3));
        assert_eq!(
            eval(&Expr::var("zzz"), &e, &ctx()),
            Err(EvalError::UnknownVar)
        );
    }

    #[test]
    fn builtins_read_event_context() {
        let e = env();
        assert_eq!(
            eval(&Expr::EventTime, &e, &ctx()).unwrap(),
            Value::Time(1_000)
        );
        assert_eq!(
            eval(&Expr::DepData, &e, &ctx()).unwrap(),
            Value::Float(36.5)
        );
        assert_eq!(
            eval(&Expr::EnergyLevel, &e, &ctx()).unwrap(),
            Value::Int(500)
        );
        let no_data = EventCtx {
            dep_data: None,
            ..ctx()
        };
        assert_eq!(
            eval(&Expr::DepData, &e, &no_data),
            Err(EvalError::NoDepData)
        );
    }

    #[test]
    fn elapsed_time_pattern() {
        // `t - start <= 700` — the maxDuration guard shape.
        let e = env();
        let guard = Expr::bin(
            BinOp::Le,
            Expr::bin(BinOp::Sub, Expr::EventTime, Expr::var("start")),
            Expr::time(700),
        );
        assert_eq!(eval(&guard, &e, &ctx()).unwrap(), Value::Bool(true));
        let late = EventCtx {
            time_us: 2_000,
            ..ctx()
        };
        assert_eq!(eval(&guard, &e, &late).unwrap(), Value::Bool(false));
    }

    #[test]
    fn time_subtraction_saturates() {
        let e = env();
        // start - t where start < t would underflow; must clamp to 0.
        let diff = Expr::bin(BinOp::Sub, Expr::var("start"), Expr::EventTime);
        assert_eq!(eval(&diff, &e, &ctx()).unwrap(), Value::Time(0));
    }

    #[test]
    fn range_check_pattern() {
        // `depData < 36 || depData > 38` — the dpData guard shape.
        let e = env();
        let guard = Expr::or(
            Expr::bin(BinOp::Lt, Expr::DepData, Expr::float(36.0)),
            Expr::bin(BinOp::Gt, Expr::DepData, Expr::float(38.0)),
        );
        assert_eq!(eval(&guard, &e, &ctx()).unwrap(), Value::Bool(false));
        let feverish = EventCtx {
            dep_data: Some(39.2),
            ..ctx()
        };
        assert_eq!(eval(&guard, &e, &feverish).unwrap(), Value::Bool(true));
    }

    #[test]
    fn int_float_promotion() {
        let e = env();
        let cmp = Expr::bin(BinOp::Ge, Expr::DepData, Expr::int(36));
        assert_eq!(eval(&cmp, &e, &ctx()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        let e = env();
        // `flag || <unknown var>` must not evaluate the rhs.
        let expr = Expr::or(Expr::var("flag"), Expr::var("zzz"));
        assert_eq!(eval(&expr, &e, &ctx()).unwrap(), Value::Bool(true));
        // `!flag && <unknown>` short-circuits too.
        let expr = Expr::and(Expr::Not(Box::new(Expr::var("flag"))), Expr::var("zzz"));
        assert_eq!(eval(&expr, &e, &ctx()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn type_mismatches_are_errors() {
        let e = env();
        let bad = Expr::bin(BinOp::Add, Expr::var("i"), Expr::var("start"));
        assert!(matches!(
            eval(&bad, &e, &ctx()),
            Err(EvalError::TypeMismatch { .. })
        ));
        let bad = Expr::bin(BinOp::Lt, Expr::var("flag"), Expr::var("flag"));
        assert!(matches!(
            eval(&bad, &e, &ctx()),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn saturating_int_arithmetic() {
        let e = env();
        let big = Expr::bin(BinOp::Add, Expr::int(i64::MAX), Expr::int(1));
        assert_eq!(eval(&big, &e, &ctx()).unwrap(), Value::Int(i64::MAX));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Time(100).to_string(), "100");
        assert_eq!(Value::Float(36.0).to_string(), "36.0");
    }
}
