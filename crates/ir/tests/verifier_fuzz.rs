//! Mutation fuzzing of the bytecode verifier.
//!
//! The safety contract of [`artemis_ir::analysis::verifier`] is
//! one-sided: **verifier accepts ⇒ execution is safe**. These tests pin
//! it the way eBPF's verifier is pinned — by throwing randomly mutated
//! programs at it. Every mutant of a valid compiled machine must either
//! be rejected by the verifier or execute through
//! [`CompiledMachine::step`] without panicking (no out-of-bounds
//! register/slot/literal/state index, no non-terminating jump), for any
//! event the engine could deliver. Over-rejection is acceptable;
//! under-rejection is the bug class being hunted.

use artemis_core::app::{AppGraph, AppGraphBuilder};
use artemis_core::event::EventKind;
use artemis_ir::analysis::{verify_machine, MachineEnv};
use artemis_ir::compile::{CompiledEvent, CompiledSuite, Op};
use artemis_ir::expr::{EventCtx, Value, VarType};
use artemis_ir::fsm::StateMachine;
use artemis_ir::{CompiledMachine, RawMachine};
use proptest::prelude::*;

/// Spec exercising every property compiler: counters, guards with
/// `&&`/comparisons, time arithmetic, depData access.
const SPEC: &str = "\
    a { maxTries: 3 onFail: skipPath; }\n\
    b { MITD: 10s dpTask: a onFail: restartPath maxAttempt: 2 onFail: skipPath; \
        collect: 2 dpTask: a onFail: restartPath; \
        maxDuration: 5s onFail: skipTask; }";

fn app() -> AppGraph {
    let mut builder = AppGraphBuilder::new();
    let a = builder.task("a");
    let b = builder.task("b");
    builder.path(&[a, b]);
    builder.build().unwrap()
}

/// The mutation corpus: every machine of the compiled spec suite,
/// paired with its source (for the verification environment).
fn corpus() -> Vec<(StateMachine, CompiledMachine)> {
    let app = app();
    let suite = artemis_ir::compile(SPEC, &app).unwrap();
    let compiled = CompiledSuite::compile(&suite, &app).unwrap();
    suite
        .machines()
        .iter()
        .cloned()
        .zip(compiled.machines().iter().cloned())
        .collect()
}

fn env_of(m: &StateMachine) -> (String, usize, Vec<VarType>) {
    (
        m.name.clone(),
        m.states.len(),
        m.vars.iter().map(|v| v.ty).collect(),
    )
}

/// Applies one mutation, selected by `kind` and parameterised by the
/// raw entropy words `a` and `b`. Mutations mix in-bounds and
/// out-of-bounds values (`x % (2 * limit)`) so a useful fraction of
/// mutants survives verification and actually executes.
fn mutate(raw: &mut RawMachine, kind: u8, a: u64, b: u64) {
    let code_len = raw.code.len();
    let n16 = (b % 64) as u16;
    match kind {
        // Perturb one operand of one instruction.
        0 => {
            if code_len == 0 {
                return;
            }
            let target_bound = 2 * code_len as u64 + 2;
            match &mut raw.code[a as usize % code_len] {
                Op::Const { dst, lit } => {
                    if a & 1 == 0 {
                        *dst = n16;
                    } else {
                        *lit = n16;
                    }
                }
                Op::LoadVar { dst, slot } => {
                    if a & 1 == 0 {
                        *dst = n16;
                    } else {
                        *slot = n16;
                    }
                }
                Op::LoadEventTime { dst } | Op::LoadDepData { dst } | Op::LoadEnergy { dst } => {
                    *dst = n16
                }
                Op::Bin {
                    dst, a: ra, b: rb, ..
                } => match a % 3 {
                    0 => *dst = n16,
                    1 => *ra = n16,
                    _ => *rb = n16,
                },
                Op::Not { dst, src } => {
                    if a & 1 == 0 {
                        *dst = n16;
                    } else {
                        *src = n16;
                    }
                }
                Op::AssertBool { src } => *src = n16,
                Op::JumpIfFalse { src, target } | Op::JumpIfTrue { src, target } => {
                    if a & 1 == 0 {
                        *src = n16;
                    } else {
                        *target = (b % target_bound) as u32;
                    }
                }
                Op::Jump { target } => *target = (b % target_bound) as u32,
                Op::StoreVar { slot, src } => {
                    if a & 1 == 0 {
                        *slot = n16;
                    } else {
                        *src = n16;
                    }
                }
                Op::CmpBranch {
                    dst,
                    a: ra,
                    b: rb,
                    target,
                    ..
                } => match a % 4 {
                    0 => *dst = n16,
                    1 => *ra = n16,
                    2 => *rb = n16,
                    _ => *target = (b % target_bound) as u32,
                },
                Op::LoadCmpBranch {
                    dst,
                    slot,
                    lit,
                    target,
                    ..
                } => match a % 4 {
                    0 => *dst = n16,
                    1 => *slot = n16,
                    2 => *lit = n16,
                    _ => *target = (b % target_bound) as u32,
                },
                Op::ConstStore { slot, lit } => {
                    if a & 1 == 0 {
                        *slot = n16;
                    } else {
                        *lit = n16;
                    }
                }
            }
        }
        // Swap two instructions (ranges now run foreign code).
        1 => {
            if code_len >= 2 {
                raw.code.swap(a as usize % code_len, b as usize % code_len);
            }
        }
        // Rewire a transition endpoint.
        2 => {
            if let Some(t) = {
                let len = raw.transitions.len();
                (len > 0).then(|| &mut raw.transitions[a as usize % len])
            } {
                let s = (b % 6) as u32;
                if a & 1 == 0 {
                    t.from = s;
                } else {
                    t.to = s;
                }
            }
        }
        // Rewrite a guard or body bytecode range.
        3 => {
            let len = raw.transitions.len();
            if len == 0 {
                return;
            }
            let t = &mut raw.transitions[a as usize % len];
            let bound = code_len as u64 + 2;
            let s = (b % bound) as u32;
            let e = ((b >> 8) % bound) as u32;
            if a & 1 == 0 {
                t.guard = Some(s..e);
            } else {
                t.body = s..e;
            }
        }
        // Move the initial state.
        4 => raw.initial_state = (b % 6) as u32,
        // Corrupt a dispatch-table entry.
        5 => {
            let k = (a % 2) as usize;
            let lists = raw.dispatch[k].len();
            let t_bound = 2 * raw.transitions.len() as u64 + 2;
            let list = if lists > 0 && a & 4 == 0 {
                &mut raw.dispatch[k][(a as usize / 8) % lists]
            } else {
                &mut raw.wildcard[k]
            };
            if list.is_empty() {
                list.push((b % t_bound) as u16);
            } else {
                let i = b as usize % list.len();
                list[i] = ((b >> 8) % t_bound) as u16;
            }
        }
        // Shrink or grow the scratch register file.
        6 => raw.max_regs = (b % 10) as usize,
        // Lie about the variable-slot count.
        7 => raw.var_count = (b % (2 * raw.var_count as u64 + 2)) as usize,
        // Drop or fabricate a guard.
        8 => {
            let len = raw.transitions.len();
            if len == 0 {
                return;
            }
            let t = &mut raw.transitions[a as usize % len];
            if b & 1 == 0 {
                t.guard = None;
            } else {
                let bound = code_len as u64 + 2;
                t.guard = Some(((b >> 1) % bound) as u32..((b >> 9) % bound) as u32);
            }
        }
        // Truncate the instruction stream (ranges dangle).
        _ => raw.code.truncate(b as usize % (code_len + 1)),
    }
}

/// Drives an accepted mutant through every event key the engine could
/// deliver, several times, from its initial state. Evaluation errors
/// are fine (the engine treats them as a silent accept); a panic here
/// fails the test.
fn exercise(cm: &CompiledMachine, init_vars: &[Value]) {
    let mut regs = vec![Value::Int(0); cm.max_regs()];
    let mut vars = init_vars.to_vec();
    let mut state = cm.initial_state();
    let mut seq = 0u64;
    for kind in [EventKind::StartTask, EventKind::EndTask] {
        for task in [0u32, 1, 2, 7, u32::MAX] {
            for _ in 0..3 {
                seq += 1;
                let ctx = EventCtx {
                    time_us: seq * 1_000,
                    dep_data: seq.is_multiple_of(2).then_some(seq as f64),
                    energy_nj: 42_000,
                };
                let ev = CompiledEvent { kind, task, ctx };
                let _ = cm.step(&mut state, &mut vars, &ev, &mut regs);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10_000, ..ProptestConfig::default() })]

    /// The tentpole property: any 1–3 random mutations of a valid
    /// compiled machine yield a program the verifier rejects or one
    /// that executes without out-of-bounds access on any event.
    #[test]
    fn accepted_mutants_execute_safely(
        machine_sel in 0usize..64,
        mutations in proptest::collection::vec(
            (0u8..10, proptest::strategy::any::<u64>(), proptest::strategy::any::<u64>()),
            1..4,
        ),
    ) {
        let corpus = corpus();
        let (src, cm) = &corpus[machine_sel % corpus.len()];
        let mut raw = cm.to_raw();
        for (kind, a, b) in &mutations {
            mutate(&mut raw, *kind, *a, *b);
        }
        let mutant = CompiledMachine::from_raw(raw);

        let (name, state_count, var_types) = env_of(src);
        let env = MachineEnv {
            name: &name,
            state_count,
            var_types: &var_types,
        };
        let diags = verify_machine(&mutant, &env);
        if diags.iter().all(|d| !d.is_error()) {
            // Accepted: must execute without panicking.
            exercise(&mutant, &src.initial_vars());
        }
    }

    /// The optimizer is verifier-monotone: for any mutant the verifier
    /// accepts, the optimized mutant must also be accepted — and must
    /// still execute safely. This is the property that makes running
    /// the optimizer *before* the install-time gate sound: optimization
    /// can never turn a verified program into a rejected (or unsafe)
    /// one, even on adversarial inputs no compiler would emit.
    #[test]
    fn optimizer_output_always_verifies(
        machine_sel in 0usize..64,
        mutations in proptest::collection::vec(
            (0u8..10, proptest::strategy::any::<u64>(), proptest::strategy::any::<u64>()),
            1..4,
        ),
    ) {
        let corpus = corpus();
        let (src, cm) = &corpus[machine_sel % corpus.len()];
        let mut raw = cm.to_raw();
        for (kind, a, b) in &mutations {
            mutate(&mut raw, *kind, *a, *b);
        }
        let mutant = CompiledMachine::from_raw(raw);

        let (name, state_count, var_types) = env_of(src);
        let env = MachineEnv {
            name: &name,
            state_count,
            var_types: &var_types,
        };
        if verify_machine(&mutant, &env).iter().all(|d| !d.is_error()) {
            let opt = artemis_ir::optimize_machine(&mutant);
            let diags = verify_machine(&opt, &env);
            prop_assert!(
                diags.iter().all(|d| !d.is_error()),
                "optimizer broke a verified mutant: {diags:?}"
            );
            exercise(&opt, &src.initial_vars());
        }
    }
}

/// The acceptance statistics that make the property above non-vacuous:
/// across a deterministic mutant population, the verifier must both
/// reject (it catches corruption) and accept (the execution leg runs) a
/// healthy share.
#[test]
fn mutation_population_is_split() {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    let corpus = corpus();
    let mut rng = StdRng::seed_from_u64(0xA57E_317A);
    let (mut accepted, mut rejected) = (0u32, 0u32);
    for _ in 0..2_000 {
        let (src, cm) = &corpus[rng.random_range(0..corpus.len())];
        let mut raw = cm.to_raw();
        mutate(
            &mut raw,
            rng.random_range(0u64..10) as u8,
            rng.next_u64(),
            rng.next_u64(),
        );
        let mutant = CompiledMachine::from_raw(raw);
        let (name, state_count, var_types) = env_of(src);
        let env = MachineEnv {
            name: &name,
            state_count,
            var_types: &var_types,
        };
        if verify_machine(&mutant, &env).iter().all(|d| !d.is_error()) {
            accepted += 1;
            exercise(&mutant, &src.initial_vars());
        } else {
            rejected += 1;
        }
    }
    assert!(
        accepted >= 100,
        "too few mutants accepted ({accepted}/2000): the safety leg is near-vacuous"
    );
    assert!(
        rejected >= 100,
        "too few mutants rejected ({rejected}/2000): the verifier is not catching corruption"
    );
}

/// Deterministic twin of `optimizer_output_always_verifies`: a fixed
/// 2 000-mutant population where every accepted mutant is optimized,
/// re-verified, and exercised. Also asserts the leg is non-vacuous.
#[test]
fn optimized_mutant_population_verifies() {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    let corpus = corpus();
    let mut rng = StdRng::seed_from_u64(0x0971_417E);
    let mut optimized = 0u32;
    for _ in 0..2_000 {
        let (src, cm) = &corpus[rng.random_range(0..corpus.len())];
        let mut raw = cm.to_raw();
        mutate(
            &mut raw,
            rng.random_range(0u64..10) as u8,
            rng.next_u64(),
            rng.next_u64(),
        );
        let mutant = CompiledMachine::from_raw(raw);
        let (name, state_count, var_types) = env_of(src);
        let env = MachineEnv {
            name: &name,
            state_count,
            var_types: &var_types,
        };
        if verify_machine(&mutant, &env).iter().all(|d| !d.is_error()) {
            let opt = artemis_ir::optimize_machine(&mutant);
            let diags = verify_machine(&opt, &env);
            assert!(
                diags.iter().all(|d| !d.is_error()),
                "optimizer broke a verified mutant: {diags:?}"
            );
            exercise(&opt, &src.initial_vars());
            optimized += 1;
        }
    }
    assert!(
        optimized >= 100,
        "too few mutants reached the optimizer ({optimized}/2000): the leg is near-vacuous"
    );
}

/// Unmutated compiler output always verifies — the gate can never
/// reject what the compiler emits (the other half of the contract, also
/// pinned per-pass in the unit tests).
#[test]
fn compiler_output_is_always_accepted() {
    for (src, cm) in corpus() {
        let (name, state_count, var_types) = env_of(&src);
        let env = MachineEnv {
            name: &name,
            state_count,
            var_types: &var_types,
        };
        let diags = verify_machine(&cm, &env);
        assert!(diags.is_empty(), "{name}: {diags:?}");
    }
}
