//! Bounded-exhaustive model checking of the lowered monitors: for
//! EVERY event sequence up to a fixed length, the machine's verdicts
//! must match an independent oracle implementation of the property.
//! Random testing samples this space; here we sweep it completely.

use artemis_core::app::AppGraphBuilder;
use artemis_core::event::EventKind;
use artemis_ir::exec::{step, IrEvent, MachineState};
use artemis_ir::expr::EventCtx;
use artemis_ir::fsm::StateMachine;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Sym {
    StartA,
    EndA,
    StartB,
    EndB,
}

const ALPHABET: [Sym; 4] = [Sym::StartA, Sym::EndA, Sym::StartB, Sym::EndB];

fn machine(spec: &str) -> StateMachine {
    let mut b = AppGraphBuilder::new();
    let a = b.task("a");
    let bb = b.task("b");
    b.path(&[bb, a]);
    let app = b.build().unwrap();
    let suite = artemis_ir::compile(spec, &app).unwrap();
    assert_eq!(suite.len(), 1);
    suite.machines()[0].clone()
}

fn drive(m: &StateMachine, seq: &[Sym], times: &[u64]) -> Vec<bool> {
    let mut state = MachineState::initial(m);
    let mut out = Vec::with_capacity(seq.len());
    for (i, sym) in seq.iter().enumerate() {
        let (kind, task) = match sym {
            Sym::StartA => (EventKind::StartTask, "a"),
            Sym::EndA => (EventKind::EndTask, "a"),
            Sym::StartB => (EventKind::StartTask, "b"),
            Sym::EndB => (EventKind::EndTask, "b"),
        };
        let ev = IrEvent {
            kind,
            task,
            ctx: EventCtx {
                time_us: times[i],
                dep_data: None,
                energy_nj: u64::MAX,
            },
        };
        out.push(step(m, &mut state, &ev).unwrap().is_some());
    }
    out
}

/// Enumerates every sequence over `ALPHABET` of exactly `len` symbols.
fn for_all_sequences(len: usize, mut f: impl FnMut(&[Sym])) {
    let mut seq = vec![Sym::StartA; len];
    let total = 4usize.pow(len as u32);
    for mut code in 0..total {
        for slot in seq.iter_mut() {
            *slot = ALPHABET[code % 4];
            code /= 4;
        }
        f(&seq);
    }
}

#[test]
fn max_tries_matches_oracle_exhaustively() {
    let m = machine("a { maxTries: 2 onFail: skipPath; }");
    for len in 1..=7 {
        for_all_sequences(len, |seq| {
            let times: Vec<u64> = (0..seq.len() as u64).collect();
            let got = drive(&m, seq, &times);

            // Oracle: count starts of `a`; the start after the budget
            // (i.e. attempt 3 while incomplete) fails and resets.
            let mut attempts = 0u32;
            let mut expected = Vec::new();
            for sym in seq {
                let fail = match sym {
                    Sym::StartA => {
                        if attempts >= 2 {
                            attempts = 0;
                            true
                        } else {
                            attempts += 1;
                            false
                        }
                    }
                    Sym::EndA => {
                        attempts = 0;
                        false
                    }
                    _ => false,
                };
                expected.push(fail);
            }
            assert_eq!(got, expected, "sequence {seq:?}");
        });
    }
}

#[test]
fn collect_matches_oracle_exhaustively() {
    let m = machine("a { collect: 2 dpTask: b onFail: restartPath; }");
    for len in 1..=7 {
        for_all_sequences(len, |seq| {
            let times: Vec<u64> = (0..seq.len() as u64).collect();
            let got = drive(&m, seq, &times);

            // Oracle: endB increments; startA with fewer than 2 fails
            // (no reset); endA consumes the buffer.
            let mut count = 0u32;
            let mut expected = Vec::new();
            for sym in seq {
                let fail = match sym {
                    Sym::EndB => {
                        count += 1;
                        false
                    }
                    Sym::StartA => count < 2,
                    Sym::EndA => {
                        count = 0;
                        false
                    }
                    Sym::StartB => false,
                };
                expected.push(fail);
            }
            assert_eq!(got, expected, "sequence {seq:?}");
        });
    }
}

#[test]
fn mitd_matches_oracle_exhaustively_with_time() {
    // Shorter sequences, but each event can arrive after a short (1 s)
    // or long (5 s) gap; the MITD bound is 3 s.
    let m = machine("a { MITD: 3s dpTask: b onFail: restartPath; }");
    let limit_us = 3_000_000u64;
    for len in 1..=5usize {
        let combos = 4usize.pow(len as u32) * 2usize.pow(len as u32);
        for code in 0..combos {
            let mut c = code;
            let mut seq = Vec::with_capacity(len);
            let mut times = Vec::with_capacity(len);
            let mut t = 0u64;
            for _ in 0..len {
                seq.push(ALPHABET[c % 4]);
                c /= 4;
                t += if c % 2 == 0 { 1_000_000 } else { 5_000_000 };
                c /= 2;
                times.push(t);
            }
            let got = drive(&m, &seq, &times);

            // Oracle: after endB (tracking the latest), a startA later
            // than limit fails; endA discharges until the next endB.
            let mut end_b: Option<u64> = None;
            let mut armed = false;
            let mut expected = Vec::new();
            for (i, sym) in seq.iter().enumerate() {
                let now = times[i];
                let fail = match sym {
                    Sym::EndB => {
                        end_b = Some(now);
                        armed = true;
                        false
                    }
                    Sym::StartA => armed && now.saturating_sub(end_b.unwrap_or(0)) > limit_us,
                    Sym::EndA => {
                        if armed {
                            armed = false;
                        }
                        false
                    }
                    Sym::StartB => false,
                };
                expected.push(fail);
            }
            assert_eq!(got, expected, "seq {seq:?} times {times:?}");
        }
    }
}
