//! Golden-file test for the C backend: the generated monitor for the
//! paper's Figure 5 benchmark is pinned byte-for-byte under
//! `tests/golden/figure5_monitor.c`. Deliberate codegen changes update
//! the file by running with `UPDATE_GOLDEN=1`.

use std::path::PathBuf;

fn figure5_c() -> String {
    let mut b = artemis_core::app::AppGraphBuilder::new();
    let body = b.task("bodyTemp");
    let avg = b.task_with_var("calcAvg", "avgTemp");
    let heart = b.task("heartRate");
    let accel = b.task("accel");
    let classify = b.task("classify");
    let mic = b.task("micSense");
    let filter = b.task("filter");
    let send = b.task("send");
    b.path(&[body, avg, heart, send]);
    b.path(&[accel, classify, send]);
    b.path(&[mic, filter, send]);
    let app = b.build().unwrap();
    let suite = artemis_ir::compile(artemis_spec::samples::FIGURE5, &app).unwrap();
    artemis_ir::codegen::emit_c(&suite)
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/figure5_monitor.c")
}

#[test]
fn figure5_c_output_matches_golden() {
    let generated = figure5_c();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &generated).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {path:?} ({e}); regenerate with UPDATE_GOLDEN=1 \
             cargo test -p artemis-ir --test golden_c"
        )
    });
    assert_eq!(
        generated, golden,
        "C output drifted from the golden file; if intentional, regenerate \
         with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_has_the_expected_shape() {
    // Belt and braces: the golden file itself must carry the paper's
    // landmarks, so an accidentally-truncated regeneration is caught.
    let c = figure5_c();
    for landmark in [
        "monitor_result_t callMonitor(MonitorEvent_t e)",
        "_begin",
        "_end",
        "void resetMonitor(void)",
        "void monitorRestartPath(uint8_t path)",
        "__nv static",
        "300000000ULL", // the 5-minute MITD in microseconds
        "ACTION_COMPLETE_PATH",
    ] {
        assert!(c.contains(landmark), "missing `{landmark}`");
    }
    // Eight properties → eight step functions.
    assert_eq!(c.matches("static monitor_result_t step_").count(), 8);
}
