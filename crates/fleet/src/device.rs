//! One fleet member: a complete simulated device and its installed
//! runtime, packaged as a single self-contained [`Send`] value.

use artemis_core::trace::TraceEvent;
use artemis_runtime::ArtemisRuntime;
use intermittent_sim::device::Device;
use intermittent_sim::simulator::RunLimit;

/// A fully built fleet device: the simulated hardware (FRAM image,
/// journal, capacitor, harvester, persistent clock) plus the installed
/// ARTEMIS runtime and monitor engine. Nothing in here is shared or
/// ambient — the value owns its whole world, which is what lets the
/// fleet shard devices across OS threads by move.
pub struct FleetDevice {
    /// The simulated hardware.
    pub dev: Device,
    /// The installed runtime (monitors deployed, reset done).
    pub rt: ArtemisRuntime,
    /// Budget for the run.
    pub limit: RunLimit,
}

/// What one device contributes to the fleet aggregate. Integer-only by
/// design: every field folds into [`FleetStats`](crate::FleetStats)
/// with commutative arithmetic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceSample {
    /// `true` if the run completed within its limit.
    pub completed: bool,
    /// Monitor events delivered (the persistent sequence counter).
    pub events: u64,
    /// Power-failure reboots.
    pub reboots: u64,
    /// Energy drawn from the capacitor, in microjoules.
    pub consumed_micro_joules: u64,
    /// Simulated time the run covered, in microseconds.
    pub sim_micros: u64,
    /// Violations per monitor index of the installed suite, counted
    /// from the device trace (a bounded trace undercounts once it
    /// wraps — deterministically, since the trace is per-device).
    pub violations: Vec<u64>,
}

impl FleetDevice {
    /// Drives the device to completion (or its limit) and reduces it to
    /// its aggregate contribution. Consumes the device: after this the
    /// FRAM image and trace are dropped, so a worker's live footprint
    /// is one device, not one chunk.
    pub fn run(mut self) -> DeviceSample {
        let started = self.dev.now();
        let outcome = self.rt.run_once(&mut self.dev, self.limit);
        let mut violations = vec![0u64; self.rt.engine().machine_count()];
        for r in self.dev.trace().records() {
            if let TraceEvent::Violation { monitor, .. } = &r.event {
                if let Some(n) = violations.get_mut(*monitor as usize) {
                    *n += 1;
                }
            }
        }
        DeviceSample {
            completed: outcome.is_completed(),
            events: self.rt.events_delivered(&self.dev),
            reboots: self.dev.reboots(),
            consumed_micro_joules: self.dev.stats().consumed.as_nano_joules() / 1_000,
            sim_micros: self.dev.now().duration_since(started).as_micros(),
            violations,
        }
    }
}
