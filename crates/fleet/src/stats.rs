//! Lock-free fleet aggregation: per-worker local statistics merged at
//! join time.
//!
//! [`FleetStats`] is deliberately integer-only. Merging shards must be
//! commutative and associative so the merged total is bit-identical
//! regardless of how many workers ran or which chunks each one stole —
//! floating-point accumulation is neither, so percentiles are carried
//! as fixed-bucket histograms and turned into numbers only at report
//! time. All counters use saturating addition, which (unlike wrapping
//! or checked addition) stays associative over unsigned integers:
//! `min(a + b + c, MAX)` parenthesises either way.

use crate::device::DeviceSample;

/// Reboot-count histogram buckets: 0, 1, 2, 3 exactly, then log₂
/// groups `4–7`, `8–15`, `16–31`, `32–63`, `≥64`.
pub const REBOOT_BUCKETS: usize = 9;

/// Energy histogram buckets: consumed energy in log₂ microjoule
/// groups, `< 1 µJ` up to `≥ 2ⁱ⁸ µJ` (~262 mJ — far above any run this
/// simulator produces).
pub const ENERGY_BUCKETS: usize = 20;

/// Aggregate statistics over a set of simulated devices.
///
/// Each worker thread accumulates its own `FleetStats` while it drains
/// device-index chunks; the shards are combined with [`FleetStats::merge`]
/// after the pool joins, so the hot path takes no locks and shares no
/// cache lines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Devices simulated.
    pub devices: u64,
    /// Devices whose run completed within its limit.
    pub completed: u64,
    /// Devices that did not finish (time/reboot limit or fault).
    pub dnf: u64,
    /// Monitor events delivered across the fleet.
    pub events: u64,
    /// Power-failure reboots across the fleet.
    pub reboots: u64,
    /// Property violations across the fleet (all monitors).
    pub violations_total: u64,
    /// Violations per monitor index of the installed suite. Shards
    /// running the same suite have equal lengths; merging pads with
    /// zeros so heterogeneous fleets still aggregate.
    pub violations: Vec<u64>,
    /// Histogram of per-device reboot counts (see [`REBOOT_BUCKETS`]).
    pub reboot_hist: [u64; REBOOT_BUCKETS],
    /// Histogram of per-device consumed energy (see [`ENERGY_BUCKETS`]).
    pub energy_hist: [u64; ENERGY_BUCKETS],
    /// Total simulated time across the fleet, in microseconds.
    pub sim_micros: u64,
}

/// Bucket index for a per-device reboot count.
fn reboot_bucket(reboots: u64) -> usize {
    if reboots < 4 {
        reboots as usize
    } else {
        // 4–7 → 4, 8–15 → 5, …, capped at the ≥64 bucket.
        (2 + (63 - reboots.leading_zeros()) as usize).min(REBOOT_BUCKETS - 1)
    }
}

/// Bucket index for a per-device consumed energy in microjoules.
fn energy_bucket(micro_joules: u64) -> usize {
    if micro_joules == 0 {
        0
    } else {
        ((64 - micro_joules.leading_zeros()) as usize).min(ENERGY_BUCKETS - 1)
    }
}

impl FleetStats {
    /// Folds one finished device into this shard's totals.
    pub fn record(&mut self, s: &DeviceSample) {
        self.devices = self.devices.saturating_add(1);
        if s.completed {
            self.completed = self.completed.saturating_add(1);
        } else {
            self.dnf = self.dnf.saturating_add(1);
        }
        self.events = self.events.saturating_add(s.events);
        self.reboots = self.reboots.saturating_add(s.reboots);
        if self.violations.len() < s.violations.len() {
            self.violations.resize(s.violations.len(), 0);
        }
        for (i, v) in s.violations.iter().enumerate() {
            self.violations_total = self.violations_total.saturating_add(*v);
            self.violations[i] = self.violations[i].saturating_add(*v);
        }
        self.reboot_hist[reboot_bucket(s.reboots)] += 1;
        self.energy_hist[energy_bucket(s.consumed_micro_joules)] += 1;
        self.sim_micros = self.sim_micros.saturating_add(s.sim_micros);
    }

    /// Combines another shard into this one. Commutative and
    /// associative (all fields are saturating sums, the violation
    /// vector is padded to the longer of the two), so shards may merge
    /// in any order with a bit-identical result.
    pub fn merge(&mut self, other: &FleetStats) {
        self.devices = self.devices.saturating_add(other.devices);
        self.completed = self.completed.saturating_add(other.completed);
        self.dnf = self.dnf.saturating_add(other.dnf);
        self.events = self.events.saturating_add(other.events);
        self.reboots = self.reboots.saturating_add(other.reboots);
        self.violations_total = self.violations_total.saturating_add(other.violations_total);
        if self.violations.len() < other.violations.len() {
            self.violations.resize(other.violations.len(), 0);
        }
        for (i, v) in other.violations.iter().enumerate() {
            self.violations[i] = self.violations[i].saturating_add(*v);
        }
        for (a, b) in self.reboot_hist.iter_mut().zip(other.reboot_hist.iter()) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.energy_hist.iter_mut().zip(other.energy_hist.iter()) {
            *a = a.saturating_add(*b);
        }
        self.sim_micros = self.sim_micros.saturating_add(other.sim_micros);
    }

    /// The `p`-quantile (`0 < p ≤ 1`) of per-device consumed energy, as
    /// the exclusive microjoule ceiling of the histogram bucket the
    /// quantile falls in. Returns `None` for an empty fleet.
    pub fn energy_quantile_ceiling_uj(&self, p: f64) -> Option<u64> {
        let total: u64 = self.energy_hist.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, n) in self.energy_hist.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(energy_bucket_ceiling_uj(i));
            }
        }
        unreachable!("cumulative histogram covers every rank");
    }

    /// Human-readable reboot-histogram labels paired with counts, for
    /// report tables.
    pub fn reboot_histogram(&self) -> [(&'static str, u64); REBOOT_BUCKETS] {
        const LABELS: [&str; REBOOT_BUCKETS] =
            ["0", "1", "2", "3", "4-7", "8-15", "16-31", "32-63", ">=64"];
        let mut out = [("", 0u64); REBOOT_BUCKETS];
        for i in 0..REBOOT_BUCKETS {
            out[i] = (LABELS[i], self.reboot_hist[i]);
        }
        out
    }
}

/// Exclusive upper bound of energy-histogram bucket `i`, in µJ.
fn energy_bucket_ceiling_uj(i: usize) -> u64 {
    1u64 << i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        completed: bool,
        events: u64,
        reboots: u64,
        uj: u64,
        violations: Vec<u64>,
    ) -> DeviceSample {
        DeviceSample {
            completed,
            events,
            reboots,
            consumed_micro_joules: uj,
            sim_micros: 1_000,
            violations,
        }
    }

    #[test]
    fn record_fills_buckets_and_counters() {
        let mut s = FleetStats::default();
        s.record(&sample(true, 10, 0, 0, vec![1, 2]));
        s.record(&sample(false, 5, 70, 900, vec![0, 1, 4]));
        assert_eq!(s.devices, 2);
        assert_eq!(s.completed, 1);
        assert_eq!(s.dnf, 1);
        assert_eq!(s.events, 15);
        assert_eq!(s.reboots, 70);
        assert_eq!(s.violations, vec![1, 3, 4]);
        assert_eq!(s.violations_total, 8);
        assert_eq!(s.reboot_hist[0], 1);
        assert_eq!(s.reboot_hist[REBOOT_BUCKETS - 1], 1);
        // 900 µJ lands in the 512..1024 bucket (index 10).
        assert_eq!(s.energy_hist[10], 1);
        assert_eq!(s.sim_micros, 2_000);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(reboot_bucket(0), 0);
        assert_eq!(reboot_bucket(3), 3);
        assert_eq!(reboot_bucket(4), 4);
        assert_eq!(reboot_bucket(7), 4);
        assert_eq!(reboot_bucket(8), 5);
        assert_eq!(reboot_bucket(63), 7);
        assert_eq!(reboot_bucket(64), 8);
        assert_eq!(reboot_bucket(u64::MAX), 8);
        assert_eq!(energy_bucket(0), 0);
        assert_eq!(energy_bucket(1), 1);
        assert_eq!(energy_bucket(2), 2);
        assert_eq!(energy_bucket(1023), 10);
        assert_eq!(energy_bucket(u64::MAX), ENERGY_BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_histogram() {
        let mut s = FleetStats::default();
        for uj in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 800] {
            s.record(&sample(true, 1, 0, uj, vec![]));
        }
        // 9 of 10 devices in bucket 1 (<2 µJ), one at 800 µJ.
        assert_eq!(s.energy_quantile_ceiling_uj(0.5), Some(2));
        assert_eq!(s.energy_quantile_ceiling_uj(0.9), Some(2));
        assert_eq!(s.energy_quantile_ceiling_uj(0.99), Some(1024));
        assert_eq!(FleetStats::default().energy_quantile_ceiling_uj(0.5), None);
    }

    #[test]
    fn merge_pads_violation_vectors() {
        let mut a = FleetStats {
            violations: vec![1],
            ..FleetStats::default()
        };
        let b = FleetStats {
            violations: vec![2, 3],
            ..FleetStats::default()
        };
        a.merge(&b);
        assert_eq!(a.violations, vec![3, 3]);
    }
}
