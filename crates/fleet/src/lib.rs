//! Fleet-scale sharded simulation: drive very large numbers of
//! self-contained simulated devices across OS threads, deterministically.
//!
//! The single-device hot path is no longer the bottleneck (9–18 FRAM
//! ops/event after the delta + batch work); serving "heavy traffic
//! from millions of users" now means running *many* devices at host
//! speed. Intermittent workloads are embarrassingly parallel across
//! devices — each device's FRAM image, journal, capacitor, harvester
//! and clock are fully self-contained — so the fleet layer exploits
//! exactly that structure:
//!
//! - **Device ownership.** A [`FleetDevice`] owns a complete device +
//!   installed runtime and is `Send`; workers receive devices by move,
//!   never by sharing. Compile-time assertions in `tests/send.rs` keep
//!   an accidental `Rc`/raw-pointer regression from reintroducing
//!   coupling.
//! - **Seed derivation.** Device `i` of a fleet seeded with `master`
//!   draws every random decision from the stream seed
//!   [`rand::seed_stream`]`(master, i)` — a SplitMix64-style splitter —
//!   so its entire simulation is a pure function of `(master, i)`.
//! - **Work stealing.** Workers claim contiguous device-index ranges
//!   from one shared atomic cursor ([`FleetConfig::chunk`] indices per
//!   claim): lock-free, cache-friendly, and naturally balancing when
//!   some devices simulate for longer than others.
//! - **Lock-free aggregation.** Each worker folds its devices into a
//!   private [`FleetStats`]; shards merge only at join time with the
//!   commutative, associative [`FleetStats::merge`]. No mutex, no
//!   atomic contention on the hot path — and because every field is an
//!   integer sum or fixed-bucket histogram, the merged total is
//!   bit-identical for every worker count and every scheduling order.

mod device;
mod stats;

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

pub use device::{DeviceSample, FleetDevice};
pub use stats::{FleetStats, ENERGY_BUCKETS, REBOOT_BUCKETS};

/// How a fleet run is sharded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of devices to simulate (indices `0..devices`).
    pub devices: u64,
    /// Worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Fleet seed; device `i` derives its stream via
    /// [`rand::seed_stream`]`(master_seed, i)`.
    pub master_seed: u64,
    /// Device indices claimed per cursor advance. Large enough to keep
    /// the shared cursor cold, small enough to balance tail latency.
    pub chunk: u64,
}

impl FleetConfig {
    /// A config with the default work-stealing grain (64 devices).
    pub fn new(devices: u64, workers: usize, master_seed: u64) -> Self {
        FleetConfig {
            devices,
            workers,
            master_seed,
            chunk: 64,
        }
    }
}

/// Builds, runs and aggregates a whole fleet.
///
/// `factory(index, stream_seed)` must construct device `index` from its
/// derived stream seed alone (no ambient state), which is what makes
/// the merged result independent of thread count. The factory runs on
/// worker threads, hence `Sync`.
pub fn run_fleet<F>(cfg: &FleetConfig, factory: F) -> FleetStats
where
    F: Fn(u64, u64) -> FleetDevice + Sync,
{
    let mut total = FleetStats::default();
    for shard in run_shards(cfg, &factory) {
        total.merge(&shard);
    }
    total
}

/// [`run_fleet`], but returning each worker's local shard unmerged —
/// for tests that pin merge-order independence and for reports on
/// shard balance.
pub fn run_shards<F>(cfg: &FleetConfig, factory: &F) -> Vec<FleetStats>
where
    F: Fn(u64, u64) -> FleetDevice + Sync,
{
    let n = cfg.devices;
    let chunk = cfg.chunk.max(1);
    let workers = cfg.workers.max(1);
    let cursor = AtomicU64::new(0);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut local = FleetStats::default();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = start.saturating_add(chunk).min(n);
                        for index in start..end {
                            let seed = rand::seed_stream(cfg.master_seed, index);
                            local.record(&factory(index, seed).run());
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect()
    })
}
