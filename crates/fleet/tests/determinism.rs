//! Determinism of the sharded fleet: the merged aggregate is a pure
//! function of the fleet seed — independent of worker count, chunk
//! grain, and scheduling — plus the algebraic properties of
//! [`FleetStats::merge`] that make that true.

use artemis_core::app::AppGraphBuilder;
use artemis_core::time::SimDuration;
use artemis_fleet::{run_fleet, run_shards, DeviceSample, FleetConfig, FleetDevice, FleetStats};
use artemis_runtime::ArtemisRuntimeBuilder;
use intermittent_sim::capacitor::Capacitor;
use intermittent_sim::device::DeviceBuilder;
use intermittent_sim::energy::Energy;
use intermittent_sim::harvester::Harvester;
use intermittent_sim::simulator::RunLimit;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A small two-task workload whose shape, supply and costs all come
/// from the device's derived seed stream — continuous and stochastic
/// supplies mixed so the fleet exercises reboots and violations.
fn tiny_fleet_device(_index: u64, seed: u64) -> FleetDevice {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = AppGraphBuilder::new();
    let sense = b.task("sense");
    let send = b.task("send");
    b.path(&[sense, send]);
    let app = b.build().expect("graph is valid");
    let suite = artemis_ir::compile(
        "sense: { maxTries: 3 onFail: skipPath; }\n\
         send: { maxDuration: 500ms onFail: skipTask; }",
        &app,
    )
    .expect("spec compiles");

    let mut rb = ArtemisRuntimeBuilder::new(app);
    // At 360 pJ/cycle a heavy draw can exceed the smaller capacitors in
    // one task attempt, so a slice of the fleet is guaranteed to deplete
    // and reboot mid-task.
    let bursts = rng.random_range(2..=6u32);
    let cycles = rng.random_range(10_000..=60_000u64);
    rb.body("sense", move |ctx| {
        for _ in 0..bursts {
            ctx.compute(cycles)?;
        }
        Ok(())
    });
    rb.body("send", |ctx| {
        ctx.compute(2_000)?;
        ctx.transmit(16)
    });

    let harvester = if rng.random_bool(0.5) {
        Harvester::Continuous
    } else {
        Harvester::stochastic(
            SimDuration::from_millis(50),
            SimDuration::from_secs(5),
            rng.next_u64(),
        )
    };
    let mut dev = DeviceBuilder::msp430fr5994()
        .capacitor(Capacitor::with_budget(Energy::from_micro_joules(
            rng.random_range(25..=90),
        )))
        .harvester(harvester)
        .trace_bounded(128)
        .build();
    let rt = rb.install(&mut dev, suite).expect("workload installs");
    FleetDevice {
        dev,
        rt,
        limit: RunLimit::sim_time(SimDuration::from_mins(30)),
    }
}

#[test]
fn merged_stats_are_identical_for_every_worker_count() {
    const DEVICES: u64 = 192;
    let mut baseline: Option<FleetStats> = None;
    for workers in [1usize, 2, 4, 8] {
        // A small chunk forces many cursor claims, so higher worker
        // counts genuinely interleave instead of one worker draining
        // everything before the others start.
        let cfg = FleetConfig {
            chunk: 8,
            ..FleetConfig::new(DEVICES, workers, 0xF1EE7)
        };
        let stats = run_fleet(&cfg, tiny_fleet_device);
        assert_eq!(stats.devices, DEVICES);
        assert!(stats.events > 0, "fleet delivered no events");
        match &baseline {
            None => baseline = Some(stats),
            Some(b) => assert_eq!(
                &stats, b,
                "{workers} workers diverged from the 1-worker aggregate"
            ),
        }
    }
    let b = baseline.expect("at least one sweep ran");
    assert!(b.reboots > 0, "stochastic supplies produced no reboots");
}

#[test]
fn consecutive_runs_are_identical() {
    let cfg = FleetConfig::new(96, 4, 7);
    let first = run_fleet(&cfg, tiny_fleet_device);
    let second = run_fleet(&cfg, tiny_fleet_device);
    assert_eq!(first, second);
}

#[test]
fn different_fleet_seeds_differ() {
    let a = run_fleet(&FleetConfig::new(64, 2, 1), tiny_fleet_device);
    let b = run_fleet(&FleetConfig::new(64, 2, 2), tiny_fleet_device);
    assert_ne!(a, b, "distinct fleet seeds produced identical aggregates");
}

#[test]
fn shards_partition_the_fleet() {
    let cfg = FleetConfig {
        chunk: 8,
        ..FleetConfig::new(100, 4, 3)
    };
    let shards = run_shards(&cfg, &tiny_fleet_device);
    assert_eq!(shards.len(), 4);
    assert_eq!(shards.iter().map(|s| s.devices).sum::<u64>(), 100);
    // Merging the shards in any order gives the run_fleet total.
    let mut fwd = FleetStats::default();
    for s in &shards {
        fwd.merge(s);
    }
    let mut rev = FleetStats::default();
    for s in shards.iter().rev() {
        rev.merge(s);
    }
    assert_eq!(fwd, rev);
    assert_eq!(fwd, run_fleet(&cfg, tiny_fleet_device));
}

/// An arbitrary `FleetStats` built from raw generated counters —
/// including near-`u64::MAX` values, so the proptest also covers the
/// saturating range where wrapping addition would lose associativity.
fn stats_from(seed: u64) -> FleetStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let wild = |r: &mut StdRng| {
        if r.random_bool(0.1) {
            u64::MAX - r.random_range(0..=4u64)
        } else {
            r.random_range(0..=1u64 << 40)
        }
    };
    let mut s = FleetStats {
        devices: wild(&mut rng),
        completed: wild(&mut rng),
        dnf: wild(&mut rng),
        events: wild(&mut rng),
        reboots: wild(&mut rng),
        violations_total: wild(&mut rng),
        violations: (0..rng.random_range(0..=6usize))
            .map(|_| wild(&mut rng))
            .collect(),
        sim_micros: wild(&mut rng),
        ..FleetStats::default()
    };
    for b in s.reboot_hist.iter_mut() {
        *b = wild(&mut rng);
    }
    for b in s.energy_hist.iter_mut() {
        *b = wild(&mut rng);
    }
    s
}

fn merged(into: &FleetStats, from: &FleetStats) -> FleetStats {
    let mut out = into.clone();
    out.merge(from);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// merge is commutative: a ∪ b == b ∪ a.
    #[test]
    fn merge_is_commutative(sa in 0..u64::MAX / 2, sb in 0..u64::MAX / 2) {
        let (a, b) = (stats_from(sa), stats_from(sb));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(
        sa in 0..u64::MAX / 2,
        sb in 0..u64::MAX / 2,
        sc in 0..u64::MAX / 2,
    ) {
        let (a, b, c) = (stats_from(sa), stats_from(sb), stats_from(sc));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    /// The identity element is the empty stats value.
    #[test]
    fn merge_identity(sa in 0..u64::MAX / 2) {
        let a = stats_from(sa);
        prop_assert_eq!(merged(&a, &FleetStats::default()), a.clone());
        prop_assert_eq!(merged(&FleetStats::default(), &a), a);
    }
}

/// Folding samples one by one must agree with folding shard-wise: the
/// precise property the worker pool relies on when chunks land on
/// different workers.
#[test]
fn record_then_merge_equals_merge_then_record() {
    let samples: Vec<DeviceSample> = (0..16)
        .map(|i| DeviceSample {
            completed: i % 3 != 0,
            events: i * 7,
            reboots: i % 5,
            consumed_micro_joules: i * i * 31,
            sim_micros: i * 1_000,
            violations: vec![i % 2, i % 4],
        })
        .collect();
    let mut all = FleetStats::default();
    for s in &samples {
        all.record(s);
    }
    let (left, right) = samples.split_at(5);
    let mut a = FleetStats::default();
    for s in left {
        a.record(s);
    }
    let mut b = FleetStats::default();
    for s in right {
        b.record(s);
    }
    a.merge(&b);
    assert_eq!(a, all);
}
