//! Compile-time `Send` assertions for the fleet's device ownership
//! model.
//!
//! The fleet shards complete devices across OS threads by move; that is
//! sound only while every layer of the stack stays `Send`. These
//! assertions fail `cargo test` at compile time if a future `Rc`, raw
//! pointer, or non-`Send` trait object sneaks into any of them — long
//! before the fleet bench would hit it at runtime.

use artemis_fleet::{DeviceSample, FleetDevice, FleetStats};
use artemis_monitor::{MonitorEngine, RemoteMonitorEngine};
use artemis_runtime::ArtemisRuntime;
use intermittent_sim::device::Device;

fn assert_send<T: Send>() {}

#[test]
fn device_stack_is_send() {
    assert_send::<Device>();
    assert_send::<MonitorEngine>();
    assert_send::<RemoteMonitorEngine>();
    assert_send::<ArtemisRuntime>();
    assert_send::<ArtemisRuntime<RemoteMonitorEngine>>();
    assert_send::<FleetDevice>();
    assert_send::<DeviceSample>();
    assert_send::<FleetStats>();
}
