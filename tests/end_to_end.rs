//! Integration tests spanning the whole pipeline: specification text →
//! AST → property set → FSM monitors → persistent engine → runtime →
//! simulated device.

use artemis::prelude::*;

fn two_task_app() -> AppGraph {
    let mut b = AppGraphBuilder::new();
    let sense = b.task("sense");
    let send = b.task("send");
    b.path(&[sense, send]);
    b.build().unwrap()
}

fn device(budget_uj: u64, delay_s: u64) -> Device {
    DeviceBuilder::msp430fr5994()
        .capacitor(Capacitor::with_budget(Energy::from_micro_joules(budget_uj)))
        .harvester(Harvester::FixedDelay(SimDuration::from_secs(delay_s)))
        .build()
}

fn install(dev: &mut Device, app: &AppGraph, spec: &str) -> ArtemisRuntime {
    let suite = artemis::ir::compile(spec, app).expect("spec compiles");
    let mut rb = ArtemisRuntimeBuilder::new(app.clone());
    rb.channel("samples");
    rb.body("sense", |ctx| {
        let v = ctx.sample(Peripheral::TemperatureAdc)?;
        ctx.push("samples", v)
    });
    rb.body("send", |ctx| {
        for _ in 0..4 {
            ctx.compute(2_000)?;
        }
        ctx.consume("samples")
    });
    rb.install(dev, suite).expect("installs")
}

#[test]
fn spec_text_drives_runtime_behaviour_end_to_end() {
    // The same app under three different specifications behaves three
    // different ways — the paper's headline claim (P1): behaviour
    // changes WITHOUT touching application code.
    let app = two_task_app();

    // (a) No properties: one sense, one send.
    let mut dev = DeviceBuilder::msp430fr5994().build();
    let mut rt = install(&mut dev, &app, "");
    rt.run_once(&mut dev, RunLimit::unbounded())
        .completed()
        .unwrap();
    let sense = app.task_by_name("sense").unwrap();
    assert_eq!(dev.trace().completions_of(sense), 1);

    // (b) collect: 5 — the path restarts until five samples exist.
    let mut dev = DeviceBuilder::msp430fr5994().build();
    let mut rt = install(
        &mut dev,
        &app,
        "send { collect: 5 dpTask: sense onFail: restartPath; }",
    );
    rt.run_once(&mut dev, RunLimit::unbounded())
        .completed()
        .unwrap();
    assert_eq!(dev.trace().completions_of(sense), 5);

    // (c) period on sense with an impossible bound: violations fire but
    // restartTask keeps the run alive.
    let mut dev = DeviceBuilder::msp430fr5994().build();
    let mut rt = install(
        &mut dev,
        &app,
        "send { collect: 3 dpTask: sense onFail: restartPath; }\n\
         sense { period: 1ms onFail: restartTask; }",
    );
    rt.run_once(&mut dev, RunLimit::sim_time(SimDuration::from_mins(5)))
        .completed()
        .unwrap();
    assert!(
        dev.trace()
            .count(|e| matches!(e, TraceEvent::Violation { .. }))
            >= 1
    );
}

#[test]
fn ir_round_trip_preserves_runtime_behaviour() {
    // Lower a spec, print the machines to IR text, re-parse them, and
    // run the app with the REPARSED monitors: behaviour must match.
    let app = two_task_app();
    let spec = "send { collect: 4 dpTask: sense onFail: restartPath; }\n\
                sense { maxTries: 6 onFail: skipPath; }";

    let run = |suite: artemis::ir::MonitorSuite| {
        let mut dev = DeviceBuilder::msp430fr5994().build();
        let mut rb = ArtemisRuntimeBuilder::new(app.clone());
        rb.channel("samples");
        rb.body("sense", |ctx| {
            let v = ctx.sample(Peripheral::TemperatureAdc)?;
            ctx.push("samples", v)
        });
        rb.body("send", |ctx| ctx.consume("samples"));
        let mut rt = rb.install(&mut dev, suite).unwrap();
        rt.run_once(&mut dev, RunLimit::unbounded())
            .completed()
            .unwrap();
        let sense = app.task_by_name("sense").unwrap();
        dev.trace().completions_of(sense)
    };

    let original = artemis::ir::compile(spec, &app).unwrap();
    let text = artemis::ir::print::print_suite(&original);
    let reparsed = artemis::ir::parse::parse_suite(&text).unwrap();
    assert_eq!(original.machines(), reparsed.machines());
    assert_eq!(run(original), run(reparsed));
}

#[test]
fn maximum_tries_bounds_attempts_under_real_power_failures() {
    // An app whose second task cannot complete on the given capacitor;
    // maxTries must bound the attempts and skip the path.
    let mut b = AppGraphBuilder::new();
    let greedy = b.task("greedy");
    b.path(&[greedy]);
    let fallback = b.task("fallback");
    b.path(&[fallback]);
    let app = b.build().unwrap();

    let mut dev = device(30, 10);
    let suite = artemis::ir::compile("greedy { maxTries: 4 onFail: skipPath; }", &app).unwrap();
    let mut rb = ArtemisRuntimeBuilder::new(app.clone());
    rb.body("greedy", |ctx| {
        for _ in 0..40 {
            ctx.compute(10_000)?; // ~144 µJ total vs 30 µJ budget
        }
        Ok(())
    });
    rb.body("fallback", |ctx| ctx.compute(100));
    let mut rt = rb.install(&mut dev, suite).unwrap();

    let out = rt
        .run_once(&mut dev, RunLimit::reboots(1_000))
        .completed()
        .expect("maxTries must rescue the run");
    assert_eq!(out.skipped.len(), 1);
    assert_eq!(out.completed.len(), 1);
    let greedy_id = app.task_by_name("greedy").unwrap();
    assert_eq!(dev.trace().attempts_of(greedy_id), 4);
}

#[test]
fn monitors_survive_power_failures_at_every_budget() {
    // Sweep capacitor budgets: whatever the failure placement, the run
    // completes and collect semantics hold exactly.
    let app = two_task_app();
    for budget_nj in [12_000u64, 16_000, 21_000, 34_000, 55_000, 89_000] {
        let mut dev = DeviceBuilder::msp430fr5994()
            .capacitor(Capacitor::with_budget(Energy::from_nano_joules(budget_nj)))
            .harvester(Harvester::FixedDelay(SimDuration::from_secs(1)))
            .build();
        let mut rt = install(
            &mut dev,
            &app,
            "send { collect: 3 dpTask: sense onFail: restartPath; }",
        );
        let out = rt.run_once(&mut dev, RunLimit::reboots(1_000_000));
        let out = out
            .completed()
            .unwrap_or_else(|| panic!("budget {budget_nj} nJ did not complete"));
        assert!(out.all_completed(), "budget {budget_nj} nJ: {out:?}");
        let sense = app.task_by_name("sense").unwrap();
        assert_eq!(
            dev.trace().completions_of(sense),
            3,
            "budget {budget_nj} nJ: collect semantics drifted"
        );
    }
}

#[test]
fn artemis_beats_mayfly_on_the_non_termination_scenario() {
    // The paper's core comparison, miniaturised: a producer-consumer
    // app where the consumer's freshness bound is shorter than the
    // charging delay. Mayfly restarts forever; ARTEMIS escalates and
    // completes.
    let mut b = AppGraphBuilder::new();
    let produce = b.task("produce");
    let consume = b.task("consume");
    b.path(&[produce, consume]);
    let app = b.build().unwrap();

    // Each charge covers `produce` + the start of `consume`, never the
    // whole pair, and the outage (5 s) exceeds the bound (2 s).
    let bodies = |rb: &mut ArtemisRuntimeBuilder| {
        rb.body("produce", |ctx| {
            for _ in 0..10 {
                ctx.compute(10_000)?;
            }
            Ok(())
        });
        rb.body("consume", |ctx| {
            for _ in 0..10 {
                ctx.compute(10_000)?;
            }
            Ok(())
        });
    };

    // ARTEMIS with the escalation: completes.
    let mut dev = device(50, 5);
    let suite = artemis::ir::compile(
        "consume { MITD: 2s dpTask: produce onFail: restartPath maxAttempt: 3 onFail: skipPath; }",
        &app,
    )
    .unwrap();
    let mut rb = ArtemisRuntimeBuilder::new(app.clone());
    bodies(&mut rb);
    let mut rt = rb.install(&mut dev, suite).unwrap();
    let artemis_out = rt.run_once(&mut dev, RunLimit::sim_time(SimDuration::from_mins(30)));
    assert!(artemis_out.is_completed(), "{artemis_out:?}");

    // Mayfly with the same freshness bound: non-termination.
    let mut dev = device(50, 5);
    let mut rb = MayflyRuntimeBuilder::new(app.clone());
    rb.body("produce", |ctx| {
        for _ in 0..10 {
            ctx.compute(10_000)?;
        }
        Ok(())
    });
    rb.body("consume", |ctx| {
        for _ in 0..10 {
            ctx.compute(10_000)?;
        }
        Ok(())
    });
    rb.expiration("consume", "produce", SimDuration::from_secs(2));
    let mut rt = rb.install(&mut dev).unwrap();
    let mayfly_out = rt.run_once(&mut dev, RunLimit::sim_time(SimDuration::from_mins(30)));
    assert!(!mayfly_out.is_completed(), "{mayfly_out:?}");
}

#[test]
fn generated_code_matches_installed_monitors() {
    // The C and Rust backends must cover every machine the engine
    // installs, under the same names.
    let app = two_task_app();
    let suite = artemis::ir::compile(
        "send { MITD: 5min dpTask: sense onFail: restartPath maxAttempt: 3 onFail: skipPath; \
         collect: 2 dpTask: sense onFail: restartPath; }\n\
         sense { maxTries: 10 onFail: skipPath; }",
        &app,
    )
    .unwrap();
    let c = artemis::ir::codegen::emit_c(&suite);
    let rust = artemis::ir::codegen::emit_rust(&suite);
    for m in suite.machines() {
        assert!(c.contains(&m.name), "C output misses {}", m.name);
        let type_name: String = m
            .name
            .split('_')
            .map(|part| {
                let mut cs = part.chars();
                match cs.next() {
                    Some(f) => f.to_uppercase().collect::<String>() + cs.as_str(),
                    None => String::new(),
                }
            })
            .collect();
        assert!(
            rust.contains(&type_name),
            "Rust output misses {type_name}:\n{rust}"
        );
    }

    let mut dev = DeviceBuilder::msp430fr5994().build();
    let engine = MonitorEngine::install(&mut dev, suite, &app).unwrap();
    assert_eq!(engine.machine_count(), 3);
}

#[test]
fn emergency_complete_path_works_across_the_stack() {
    let mut b = AppGraphBuilder::new();
    let check = b.task_with_var("check", "reading");
    let alarm = b.task("alarm");
    let routine_work = b.task("routine");
    b.path(&[check, alarm]);
    b.path(&[routine_work]);
    let app = b.build().unwrap();

    let mut dev = DeviceBuilder::msp430fr5994().build();
    let suite = artemis::ir::compile(
        "check { dpData: reading Range: [0, 100] onFail: completePath; }",
        &app,
    )
    .unwrap();
    let mut rb = ArtemisRuntimeBuilder::new(app.clone());
    rb.body("check", |ctx| {
        ctx.compute(500)?;
        ctx.set_monitored(250.0); // out of range
        Ok(())
    });
    rb.body("alarm", |ctx| ctx.transmit(4));
    rb.body("routine", |ctx| ctx.compute(500));
    let mut rt = rb.install(&mut dev, suite).unwrap();

    let out = rt
        .run_once(&mut dev, RunLimit::unbounded())
        .completed()
        .unwrap();
    assert!(out.emergency);
    assert_eq!(
        dev.trace()
            .completions_of(app.task_by_name("alarm").unwrap()),
        1,
        "the alarm must run unmonitored to the end of the path"
    );
    assert_eq!(
        dev.trace()
            .attempts_of(app.task_by_name("routine").unwrap()),
        0,
        "no further paths execute after an emergency completion"
    );
}
