//! Integration tests for the `artemis` command-line tool.

use std::process::Command;

fn artemis() -> Command {
    Command::new(env!("CARGO_BIN_EXE_artemis"))
}

fn write_spec(content: &str) -> tempfile_lite::TempPath {
    tempfile_lite::write(content)
}

/// A tiny self-contained temp-file helper (no external crate).
mod tempfile_lite {
    use std::path::PathBuf;

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    pub fn write(content: &str) -> TempPath {
        let mut path = std::env::temp_dir();
        let unique = format!(
            "artemis-cli-test-{}-{}.spec",
            std::process::id(),
            content.len()
        );
        path.push(unique);
        let mut f = std::fs::File::create(&path).unwrap();
        std::io::Write::write_all(&mut f, content.as_bytes()).unwrap();
        TempPath(path)
    }
}

#[test]
fn check_accepts_a_valid_spec() {
    let spec = write_spec(
        "sense: { maxTries: 3 onFail: skipPath; }\n\
         send { collect: 2 dpTask: sense onFail: restartPath; }",
    );
    let out = artemis()
        .args(["check", spec.0.to_str().unwrap(), "--paths", "sense>send"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("ok: 2 propert(ies), 2 machine(s)"),
        "{stdout}"
    );
}

#[test]
fn check_fails_on_contradictions() {
    let spec = write_spec("sense: { maxTries: 3 onFail: restartTask; }");
    let out = artemis()
        .args(["check", spec.0.to_str().unwrap(), "--paths", "sense"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("guaranteed loop"), "{stderr}");
}

#[test]
fn check_reports_parse_errors_with_carets() {
    let spec = write_spec("sense: { maxTries onFail: skipPath; }");
    let out = artemis()
        .args(["check", spec.0.to_str().unwrap(), "--paths", "sense"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("expected `:`"), "{stderr}");
    assert!(stderr.contains('^'), "{stderr}");
}

#[test]
fn compile_emits_ir_c_and_rust() {
    let spec = write_spec("sense: { maxTries: 3 onFail: skipPath; }");
    for (emit, needle) in [
        ("ir", "machine sense_maxTries_0 task sense"),
        ("c", "monitor_result_t callMonitor(MonitorEvent_t e)"),
        ("rust", "pub struct SenseMaxTries0"),
        ("dot", "digraph monitors"),
    ] {
        let out = artemis()
            .args([
                "compile",
                spec.0.to_str().unwrap(),
                "--paths",
                "sense",
                "--emit",
                emit,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "--emit {emit}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(needle), "--emit {emit}:\n{stdout}");
    }
}

#[test]
fn merged_paths_resolve_with_the_path_qualifier() {
    let spec = write_spec("send { collect: 1 dpTask: accel onFail: restartPath Path: 2; }");
    let out = artemis()
        .args([
            "check",
            spec.0.to_str().unwrap(),
            "--paths",
            "temp>send,accel>send",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn monitored_variable_syntax_in_paths() {
    let spec = write_spec("calc { dpData: avg Range: [36, 38] onFail: completePath; }");
    let out = artemis()
        .args([
            "check",
            spec.0.to_str().unwrap(),
            "--paths",
            "calc:avg>send",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn usage_on_bad_invocations() {
    for args in [vec![], vec!["frobnicate"], vec!["compile"]] {
        let out = artemis().args(&args).output().unwrap();
        assert!(!out.status.success(), "args {args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{stderr}");
    }
}
