//! Property-based crash-consistency tests: whatever the energy budget
//! and outage pattern, the committed application state after an
//! intermittent run must equal the continuous-power run's.

use artemis::prelude::*;
use proptest::prelude::*;

/// Builds the reference app: three producers feeding one consumer that
/// sums everything into a persistent accumulator channel.
fn app() -> AppGraph {
    let mut b = AppGraphBuilder::new();
    let a = b.task("a");
    let bb = b.task("b");
    let c = b.task("c");
    let sum = b.task("sum");
    b.path(&[a, bb, c, sum]);
    b.build().unwrap()
}

fn install(dev: &mut Device, graph: &AppGraph) -> ArtemisRuntime {
    let suite =
        artemis::ir::compile("sum { collect: 1 dpTask: c onFail: restartPath; }", graph).unwrap();
    let mut rb = ArtemisRuntimeBuilder::new(graph.clone());
    rb.channel("values");
    rb.channel("result");
    rb.body("a", |ctx| {
        ctx.compute(3_000)?;
        ctx.push("values", 1.0)
    });
    rb.body("b", |ctx| {
        ctx.compute(5_000)?;
        ctx.push("values", 10.0)
    });
    rb.body("c", |ctx| {
        ctx.compute(7_000)?;
        ctx.push("values", 100.0)
    });
    rb.body("sum", |ctx| {
        let total: f64 = ctx.read_all("values")?.iter().sum();
        ctx.consume("values")?;
        ctx.push("result", total)
    });
    rb.install(dev, suite).unwrap()
}

fn result_of(rt: &ArtemisRuntime, dev: &mut Device) -> Vec<f64> {
    let ch = rt.channel("result").unwrap();
    let tx = artemis::sim::journal::TxWriter::new();
    // A run can complete with the capacitor nearly drained, so the
    // post-run readback may brown out; recharge and retry like any
    // reboot would (the read is side-effect free).
    for _ in 0..3 {
        if let Ok(v) = ch.read_all(dev, &tx) {
            return v;
        }
        dev.power_cycle();
    }
    ch.read_all(dev, &tx).unwrap()
}

fn reference() -> Vec<f64> {
    let mut dev = DeviceBuilder::msp430fr5994().build();
    let graph = app();
    let mut rt = install(&mut dev, &graph);
    rt.run_once(&mut dev, RunLimit::unbounded())
        .completed()
        .unwrap();
    result_of(&rt, &mut dev)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Fixed-delay harvesting at arbitrary (viable) budgets never
    /// changes the committed result.
    #[test]
    fn committed_state_matches_continuous_run(
        budget_nj in 12_000u64..200_000,
        delay_ms in 100u64..60_000,
    ) {
        let expected = reference();
        let graph = app();
        let mut dev = DeviceBuilder::msp430fr5994()
            .capacitor(Capacitor::with_budget(Energy::from_nano_joules(budget_nj)))
            .harvester(Harvester::FixedDelay(SimDuration::from_millis(delay_ms)))
            .build();
        let mut rt = install(&mut dev, &graph);
        let out = rt.run_once(&mut dev, RunLimit::reboots(1_000_000));
        prop_assert!(out.is_completed(), "budget {budget_nj} nJ, delay {delay_ms} ms");
        prop_assert_eq!(result_of(&rt, &mut dev), expected);
    }

    /// Randomised outage traces (stochastic harvester) preserve the
    /// result too — failure placement is adversarially varied.
    #[test]
    fn stochastic_outages_preserve_the_result(
        budget_nj in 12_000u64..80_000,
        seed in 0u64..1_000,
    ) {
        let expected = reference();
        let graph = app();
        let mut dev = DeviceBuilder::msp430fr5994()
            .capacitor(Capacitor::with_budget(Energy::from_nano_joules(budget_nj)))
            .harvester(Harvester::stochastic(
                SimDuration::from_millis(50),
                SimDuration::from_secs(30),
                seed,
            ))
            .build();
        let mut rt = install(&mut dev, &graph);
        let out = rt.run_once(&mut dev, RunLimit::reboots(1_000_000));
        prop_assert!(out.is_completed(), "budget {budget_nj} nJ, seed {seed}");
        prop_assert_eq!(result_of(&rt, &mut dev), expected);
    }

    /// The persistent clock keeps the run's wall time consistent: total
    /// time equals on-time plus off-time, and on-time is invariant-ish
    /// across budgets (re-execution adds work, so it can only grow).
    #[test]
    fn clock_accounting_is_consistent(
        budget_nj in 12_000u64..200_000,
        delay_ms in 100u64..10_000,
    ) {
        let graph = app();
        let mut dev = DeviceBuilder::msp430fr5994()
            .capacitor(Capacitor::with_budget(Energy::from_nano_joules(budget_nj)))
            .harvester(Harvester::FixedDelay(SimDuration::from_millis(delay_ms)))
            .build();
        let mut rt = install(&mut dev, &graph);
        let out = rt.run_once(&mut dev, RunLimit::reboots(1_000_000));
        prop_assert!(out.is_completed());
        let on = dev.clock().on_time();
        let off = dev.clock().off_time();
        prop_assert_eq!(dev.now().as_micros(), (on + off).as_micros());
        prop_assert_eq!(
            off.as_micros(),
            dev.reboots() * delay_ms * 1_000,
            "each reboot contributes exactly one outage"
        );
    }
}
