//! Robustness checks beyond the paper's exact setups: stochastic
//! charging, simultaneous multi-monitor failures, clock measurement
//! error, and the benchmark under the external-monitor deployment.

use artemis::bench::health::{
    artemis_builder, benchmark_capacitor, health_app, install_artemis, install_mayfly, HEALTH_SPEC,
};
use artemis::monitor::{Monitoring, RemoteMonitorEngine};
use artemis::prelude::*;
use artemis::sim::PersistentClock;

/// The Figure 12 story must survive randomised outage durations, not
/// just fixed delays: with outages well under the MITD bound both
/// systems complete; with outages well over it only ARTEMIS does.
#[test]
fn fig12_shape_holds_under_stochastic_charging() {
    let limit = RunLimit::sim_time(SimDuration::from_hours(6));

    // Outages 30–90 s: far below the 5-minute bound.
    for seed in [1u64, 2, 3] {
        let short =
            || Harvester::stochastic(SimDuration::from_secs(30), SimDuration::from_secs(90), seed);
        let mut dev = artemis::bench::health::benchmark_device(short());
        let mut rt = install_artemis(&mut dev, HEALTH_SPEC);
        assert!(
            rt.run_once(&mut dev, limit).is_completed(),
            "ARTEMIS, short outages, seed {seed}"
        );
        let mut dev = artemis::bench::health::benchmark_device(short());
        let mut rt = install_mayfly(&mut dev);
        assert!(
            rt.run_once(&mut dev, limit).is_completed(),
            "Mayfly, short outages, seed {seed}"
        );
    }

    // Outages 6–10 minutes: always beyond the bound.
    for seed in [1u64, 2, 3] {
        let long = || {
            Harvester::stochastic(
                SimDuration::from_secs(360),
                SimDuration::from_secs(600),
                seed,
            )
        };
        let mut dev = artemis::bench::health::benchmark_device(long());
        let mut rt = install_artemis(&mut dev, HEALTH_SPEC);
        assert!(
            rt.run_once(&mut dev, limit).is_completed(),
            "ARTEMIS must complete under long outages, seed {seed}"
        );
        let mut dev = artemis::bench::health::benchmark_device(long());
        let mut rt = install_mayfly(&mut dev);
        assert!(
            !rt.run_once(&mut dev, limit).is_completed(),
            "Mayfly must NOT complete under long outages, seed {seed}"
        );
    }
}

/// Several monitors failing on one event: all verdicts are reported and
/// the most severe action wins.
#[test]
fn simultaneous_failures_arbitrate_to_most_severe() {
    let mut b = AppGraphBuilder::new();
    let a = b.task("a");
    let z = b.task("z");
    b.path(&[a, z]);
    let app = b.build().unwrap();

    // Three properties on `a` that a delayed second start all violates:
    // maxTries(1) -> skipTask-severity... use distinct actions to check
    // arbitration: skipTask vs skipPath (skipPath must win).
    let spec = "a { maxTries: 1 onFail: skipTask; \
                period: 1ms onFail: skipPath; }";
    let suite = artemis::ir::compile(spec, &app).unwrap();
    let mut dev = DeviceBuilder::msp430fr5994().build();
    let engine = artemis::monitor::MonitorEngine::install(&mut dev, suite, &app).unwrap();
    engine.reset_monitor(&mut dev).unwrap();

    let t = |ms: u64| SimInstant::from_micros(ms * 1_000);
    engine
        .call_monitor(&mut dev, 1, &MonitorEvent::start(a, t(0)))
        .unwrap();
    // Second start, 10 ms later: maxTries exceeded AND period violated.
    let verdicts = engine
        .call_monitor(&mut dev, 2, &MonitorEvent::start(a, t(10)))
        .unwrap();
    assert_eq!(verdicts.len(), 2, "{verdicts:?}");
    let actions: Vec<Action> = verdicts.iter().map(|v| v.action).collect();
    assert_eq!(
        Action::arbitrate(&actions),
        Some(Action::SkipPath(PathId(0)))
    );
}

/// Timekeeping error (±5 % per outage, the accuracy class of remanence
/// timekeepers) must not change the far-from-boundary outcomes.
#[test]
fn clock_error_does_not_flip_clear_cut_outcomes() {
    for seed in [11u64, 12] {
        // 1-minute outages with a noisy clock: far under the bound.
        let mut dev = DeviceBuilder::msp430fr5994()
            .capacitor(benchmark_capacitor())
            .harvester(Harvester::FixedDelay(SimDuration::from_secs(59)))
            .clock(PersistentClock::with_outage_error(0.05, seed))
            .build();
        let mut rt = install_artemis(&mut dev, HEALTH_SPEC);
        assert!(
            rt.run_once(&mut dev, RunLimit::sim_time(SimDuration::from_hours(6)))
                .is_completed(),
            "noisy clock, short outages, seed {seed}"
        );

        // 8-minute outages: far over the bound; ARTEMIS still completes
        // by skipping after three attempts.
        let mut dev = DeviceBuilder::msp430fr5994()
            .capacitor(benchmark_capacitor())
            .harvester(Harvester::FixedDelay(SimDuration::from_secs(480)))
            .clock(PersistentClock::with_outage_error(0.05, seed))
            .build();
        let mut rt = install_artemis(&mut dev, HEALTH_SPEC);
        let out = rt
            .run_once(&mut dev, RunLimit::sim_time(SimDuration::from_hours(6)))
            .completed()
            .expect("must complete");
        assert!(out.skipped.contains(&PathId(1)), "{out:?}");
    }
}

/// The full benchmark also runs under the external-monitor deployment
/// (same verdict semantics, different cost profile).
#[test]
fn health_benchmark_runs_under_remote_monitoring() {
    let app = health_app();
    let suite = artemis::ir::compile(HEALTH_SPEC, &app).unwrap();
    let mut dev = artemis::bench::health::benchmark_device(Harvester::Continuous);
    let remote = RemoteMonitorEngine::install(&mut dev, suite, &app).unwrap();
    remote.reset_monitor(&mut dev).unwrap();
    let mut rt = artemis_builder_runtime(&mut dev, remote);
    let out = rt
        .run_once(&mut dev, RunLimit::sim_time(SimDuration::from_hours(1)))
        .completed()
        .expect("completes");
    assert!(out.all_completed(), "{out:?}");
    // And the node kept zero monitor FRAM.
    assert_eq!(dev.fram().used_by(artemis::sim::MemOwner::Monitor), 0);
}

fn artemis_builder_runtime(
    dev: &mut Device,
    remote: RemoteMonitorEngine,
) -> ArtemisRuntime<RemoteMonitorEngine> {
    artemis_builder(health_app())
        .install_with(dev, remote)
        .expect("installs")
}
