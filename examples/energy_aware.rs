//! The §4.2.2 extension property, end to end: `energy` gates a task on
//! the capacitor's charge level, skipping it when a completed execution
//! is unlikely — the paper's worked example of extending the framework
//! (new grammar rule, new lowering template, new runtime probe).
//!
//! ```text
//! cargo run --example energy_aware
//! ```

use artemis::prelude::*;

fn main() {
    let mut b = AppGraphBuilder::new();
    let cheap = b.task("cheapSense");
    let hungry = b.task("hungrySense");
    let send = b.task("send");
    b.path(&[cheap, hungry, send]);
    let app = b.build().expect("valid graph");

    // The extension property, written like any other: skip hungrySense
    // unless at least 500 µJ is banked.
    let spec = "hungrySense: { energy: 500uJ onFail: skipTask; }";
    let suite = artemis::ir::compile(spec, &app).expect("compiles");
    println!(
        "lowered `energy` property to machine `{}`:\n\n{}",
        suite.machines()[0].name,
        artemis::ir::print::print_machine(&suite.machines()[0]),
    );

    // Scenario A: a big capacitor — the guard passes, the task runs.
    let run = |budget_uj: u64| {
        let mut dev = DeviceBuilder::msp430fr5994()
            .capacitor(Capacitor::with_budget(Energy::from_micro_joules(budget_uj)))
            .harvester(Harvester::FixedDelay(SimDuration::from_secs(5)))
            .build();
        let suite = artemis::ir::compile(spec, &app).expect("compiles");
        let mut rb = ArtemisRuntimeBuilder::new(app.clone());
        rb.body("cheapSense", |ctx| ctx.compute(1_000));
        rb.body("hungrySense", |ctx| {
            // ~400 µJ across bursts: viable only on a healthy charge.
            for _ in 0..40 {
                ctx.compute(28_000)?;
            }
            Ok(())
        });
        rb.body("send", |ctx| ctx.compute(2_000));
        let mut rt = rb.install(&mut dev, suite).expect("install");
        let out = rt.run_once(&mut dev, RunLimit::sim_time(SimDuration::from_mins(30)));
        let ran = dev
            .trace()
            .completions_of(app.task_by_name("hungrySense").unwrap());
        (out.is_completed(), ran, dev.reboots())
    };

    let (done, ran, reboots) = run(1_500);
    println!("1.5 mJ capacitor: completed={done}, hungrySense ran {ran}x, reboots={reboots}");
    assert!(done && ran == 1);

    // Scenario B: a 300 µJ capacitor can never bank 500 µJ — the guard
    // fires every time and the task is skipped instead of thrashing.
    let (done, ran, reboots) = run(300);
    println!("300 µJ capacitor: completed={done}, hungrySense ran {ran}x, reboots={reboots}");
    assert!(done && ran == 0, "energy guard must skip the hungry task");
    println!("\nwithout the energy property, the 300 µJ device would brown-out loop inside hungrySense until maxTries (if any) rescued it — the guard skips it before wasting the charge.");
}
