//! Background §2, measured: the same workload under the two classes of
//! intermittent system software — a Mementos/TICS-style *checkpointing*
//! runtime and the Chain-style *task-based* runtime ARTEMIS builds on.
//!
//! The workload: take 8 sensor readings, fold them into a running
//! digest, transmit the digest. Both runtimes run it on the same
//! device configuration; the comparison shows the checkpointing
//! re-execution tax vs the task runtime's commit overhead.
//!
//! ```text
//! cargo run --example checkpoint_vs_tasks
//! ```

use artemis::prelude::*;
use checkpoint::{CheckpointProgram, CheckpointRuntime};

const READINGS: usize = 8;

fn device() -> Device {
    DeviceBuilder::msp430fr5994()
        .capacitor(Capacitor::with_budget(Energy::from_micro_joules(18)))
        .harvester(Harvester::FixedDelay(SimDuration::from_secs(1)))
        .build()
}

fn main() {
    // --- Checkpointing runtime ---------------------------------------
    let mut dev = device();
    let mut program = CheckpointProgram::new();
    for _ in 0..READINGS {
        let idx = program.step(|ctx| {
            let v = ctx.sample(Peripheral::TemperatureAdc)?;
            ctx.compute(2_000)?;
            ctx.regs[0] += 1; // count
            ctx.regs[1] = ctx.regs[1].wrapping_mul(31).wrapping_add(v as u64);
            Ok(())
        });
        program.checkpoint_after(idx);
    }
    program.step(|ctx| {
        ctx.compute(5_000)?;
        ctx.regs[2] = ctx.regs[1] ^ 0xA5A5;
        Ok(())
    });
    let mut cp = CheckpointRuntime::install(&mut dev, program).expect("install");
    let regs = cp
        .run_once(&mut dev, RunLimit::reboots(100_000))
        .completed()
        .expect("checkpoint run completes");
    println!("== checkpointing runtime ==");
    println!("readings: {}, digest: {:#x}", regs[0], regs[2]);
    println!(
        "checkpoints: {}, steps re-executed: {}, reboots: {}",
        cp.checkpoints_taken(),
        cp.steps_reexecuted(),
        dev.reboots()
    );
    println!(
        "energy: {}, time executing: {}\n",
        dev.stats().consumed,
        dev.clock().on_time()
    );

    // --- Task-based runtime (ARTEMIS, no properties) ------------------
    let mut dev = device();
    let mut b = AppGraphBuilder::new();
    let sense = b.task("sense");
    let digest = b.task("digest");
    b.path(&[sense, digest]);
    let app = b.build().expect("graph");
    let suite = artemis::ir::compile(
        // The task-based runtime can ALSO carry a monitor for free:
        // collect the same 8 readings by path restarts.
        "digest { collect: 8 dpTask: sense onFail: restartPath; }",
        &app,
    )
    .expect("spec");
    let mut rb = ArtemisRuntimeBuilder::new(app.clone());
    rb.channel("readings");
    rb.body("sense", |ctx| {
        let v = ctx.sample(Peripheral::TemperatureAdc)?;
        ctx.compute(2_000)?;
        ctx.push("readings", v)
    });
    rb.body("digest", |ctx| {
        let all = ctx.read_all("readings")?;
        ctx.compute(5_000)?;
        let mut d = 0u64;
        for v in &all {
            d = d.wrapping_mul(31).wrapping_add(*v as u64);
        }
        ctx.consume("readings")?;
        ctx.push("digest", (d ^ 0xA5A5) as f64)
    });
    rb.channel("digest");
    let mut rt = rb.install(&mut dev, suite).expect("install");
    let out = rt
        .run_once(&mut dev, RunLimit::reboots(100_000))
        .completed()
        .expect("task run completes");
    println!("== task-based runtime (ARTEMIS) ==");
    println!("outcome: {out:?}");
    println!("reboots: {}", dev.reboots());
    println!(
        "energy: {}, time executing: {}",
        dev.stats().consumed,
        dev.clock().on_time()
    );
    println!(
        "\nthe checkpointing runtime re-executes work after every restore; \
         the task runtime re-executes at most the interrupted task and \
         gets property monitoring for free on top."
    );
}
