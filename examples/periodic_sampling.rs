//! A long-lived periodic-sampling deployment: the application runs
//! repeatedly (one run per sampling round), and a `period` property
//! watches the cadence of the sensing task across rounds — including
//! through charging delays that stretch the interval.
//!
//! ```text
//! cargo run --example periodic_sampling
//! ```

use artemis::prelude::*;

fn main() {
    let mut b = AppGraphBuilder::new();
    let sample = b.task("sample");
    let log = b.task("log");
    b.path(&[sample, log]);
    let app = b.build().expect("valid graph");

    // The cadence contract: one sampling round every 30 s (±3 s). A
    // missed beat restarts the task (i.e. samples immediately); three
    // consecutive misses skip the round entirely.
    let spec =
        "sample: { period: 30s jitter: 3s onFail: restartTask maxAttempt: 3 onFail: skipPath; }";
    let suite = artemis::ir::compile(spec, &app).expect("compiles");

    // Stochastic harvesting: outages of 1–20 s, seeded for repeatability.
    let mut dev = DeviceBuilder::msp430fr5994()
        .capacitor(Capacitor::with_budget(Energy::from_micro_joules(60)))
        .harvester(Harvester::stochastic(
            SimDuration::from_secs(1),
            SimDuration::from_secs(20),
            7,
        ))
        .build();

    let mut rb = ArtemisRuntimeBuilder::new(app.clone());
    rb.channel("readings");
    rb.body("sample", |ctx| {
        let v = ctx.sample(Peripheral::TemperatureAdc)?;
        ctx.push("readings", v)
    });
    rb.body("log", |ctx| {
        ctx.compute(3_000)?;
        Ok(())
    });
    let mut rt = rb.install(&mut dev, suite).expect("install");

    let rounds = 20;
    let mut completed = 0;
    for round in 0..rounds {
        let out = rt.run_once(&mut dev, RunLimit::sim_time(SimDuration::from_mins(10)));
        match out {
            SimOutcome::Completed(_) => completed += 1,
            SimOutcome::NonTermination(why) => println!("round {round}: {why}"),
        }
        // Sleep until the next sampling slot (the deployment's duty
        // cycle), in 1 s ticks so a depleted capacitor browns out and
        // recharges mid-sleep — the charging delay pushes the next
        // sample past the 33 s tolerance and trips the property.
        for _ in 0..30 {
            if dev.idle(SimDuration::from_secs(1)).is_err() {
                dev.power_cycle();
            }
        }
        while rt.rearm(&mut dev).is_err() {
            dev.power_cycle();
        }
        if round == 0 {
            println!("first round done at {}", dev.now());
        }
    }

    let violations = dev
        .trace()
        .count(|e| matches!(e, TraceEvent::Violation { .. }));
    println!("rounds completed: {completed}/{rounds}");
    println!("period violations observed: {violations}");
    println!(
        "total time: {} ({} executing, {} charging, {} reboots)",
        dev.now(),
        dev.clock().on_time(),
        dev.clock().off_time(),
        dev.reboots(),
    );
    let readings = {
        let ch = rt.channel("readings").expect("channel");
        let tx = artemis::sim::journal::TxWriter::new();
        ch.len(&mut dev, &tx).expect("read")
    };
    println!("readings banked: {readings}");
    assert_eq!(completed, rounds, "every round must finish");
    assert!(
        readings >= rounds / 2,
        "most rounds must bank a reading (skipped rounds lose theirs)"
    );
}
