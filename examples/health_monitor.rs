//! The paper's full benchmark: the wearable health-monitoring
//! application (Figures 4–6) under the Figure 5 specification, on
//! intermittent power with a charging delay you choose.
//!
//! ```text
//! cargo run --release --example health_monitor -- [charging-minutes]
//! ```
//!
//! With delays above five minutes, watch the `MITD … maxAttempt: 3`
//! property bound the path-2 restarts and skip the path — the paper's
//! Figure 13 in your terminal.

use artemis::bench::health::{benchmark_device, install_artemis, nominal_minutes, HEALTH_SPEC};
use artemis::prelude::*;

fn main() {
    let minutes: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);
    println!("charging delay: {minutes} nominal minute(s)\n");

    let mut dev = benchmark_device(Harvester::FixedDelay(nominal_minutes(minutes)));
    let mut rt = install_artemis(&mut dev, HEALTH_SPEC);

    let outcome = rt.run_once(&mut dev, RunLimit::sim_time(SimDuration::from_hours(6)));
    let app = rt.app().clone();

    // Render the trace with task names.
    let mut text = dev.trace().render();
    for (i, t) in app.tasks().iter().enumerate().rev() {
        text = text.replace(&format!("task#{i}"), &t.name);
    }
    println!("{text}");

    match outcome {
        SimOutcome::Completed(out) => {
            println!("== completed ==");
            println!("paths completed: {:?}", out.completed);
            println!("paths skipped:   {:?}", out.skipped);
            println!("emergency (completePath fired): {}", out.emergency);
        }
        SimOutcome::NonTermination(why) => println!("== {why} =="),
    }
    println!(
        "reboots: {}, energy: {}, on-time: {}, charging: {}",
        dev.reboots(),
        dev.stats().consumed,
        dev.clock().on_time(),
        dev.clock().off_time(),
    );
}
