//! Quickstart: a two-task sensing app, a one-line property, and an
//! intermittently-powered run.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use artemis::prelude::*;

fn main() {
    // 1. The task graph: one path, two tasks.
    let mut b = AppGraphBuilder::new();
    let sense = b.task("sense");
    let send = b.task("send");
    b.path(&[sense, send]);
    let app = b.build().expect("graph is valid");

    // 2. Properties, written in the ARTEMIS specification language,
    //    separate from the application code: `send` needs three fresh
    //    samples from `sense`, or the path restarts to collect more.
    let spec = "send: { collect: 3 dpTask: sense onFail: restartPath; }";
    let monitors = artemis::ir::compile(spec, &app).expect("spec compiles");
    println!(
        "compiled {} monitor(s): {:?}",
        monitors.len(),
        monitors
            .machines()
            .iter()
            .map(|m| &m.name)
            .collect::<Vec<_>>()
    );

    // 3. A simulated batteryless device: a small capacitor charged by a
    //    fixed 2-second outage after every brown-out.
    let mut dev = DeviceBuilder::msp430fr5994()
        .capacitor(Capacitor::with_budget(Energy::from_micro_joules(250)))
        .harvester(Harvester::FixedDelay(SimDuration::from_secs(2)))
        .build();

    // 4. Task bodies, registered on the runtime builder. Effects are
    //    staged and committed atomically at task end.
    let mut rb = ArtemisRuntimeBuilder::new(app.clone());
    rb.channel("samples");
    rb.body("sense", |ctx| {
        let v = ctx.sample(Peripheral::TemperatureAdc)?;
        ctx.push("samples", v)
    });
    rb.body("send", |ctx| {
        let n = ctx.channel_len("samples")?;
        ctx.transmit(8 * n)?;
        ctx.consume("samples")
    });
    let mut rt = rb.install(&mut dev, monitors).expect("install");

    // 5. Run to completion across power failures.
    let outcome = rt.run_once(&mut dev, RunLimit::sim_time(SimDuration::from_mins(10)));
    match outcome {
        SimOutcome::Completed(out) => {
            println!("completed after {} reboot(s): {:?}", dev.reboots(), out);
        }
        SimOutcome::NonTermination(why) => println!("did not terminate: {why}"),
    }
    println!(
        "consumed {} over {} of execution ({} charging)",
        dev.stats().consumed,
        dev.clock().on_time(),
        dev.clock().off_time(),
    );
    println!("\ntimeline:\n{}", dev.trace().render());
}
