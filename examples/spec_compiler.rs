//! The language pipeline as a standalone tool: parse a property
//! specification, resolve it against the benchmark task graph, lower it
//! to intermediate-language state machines, and emit both the textual
//! IR and the generated C monitor (the paper's Figure 10 output).
//!
//! ```text
//! cargo run --example spec_compiler              # compiles Figure 5
//! cargo run --example spec_compiler -- my.spec   # or your own file
//! ```

use artemis::bench::health::health_app;
use artemis::ir;
use artemis::spec;

fn main() {
    let source = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read `{path}`: {e}"))
        }
        None => spec::samples::FIGURE5.to_string(),
    };
    let app = health_app();

    // Front end: text -> AST, with source-located diagnostics.
    let ast = match spec::parse(&source) {
        Ok(ast) => ast,
        Err(diag) => {
            eprintln!("{}", diag.render(&source));
            std::process::exit(1);
        }
    };
    println!(
        "parsed {} task block(s), {} propert(ies)\n",
        ast.blocks.len(),
        ast.property_count()
    );

    // Canonical pretty-print (parse ∘ print is the identity).
    println!("== canonical specification ==\n{}", spec::print(&ast));

    // Model-to-model: properties -> finite-state machines.
    let suite = match ir::lower(&ast, &app) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!("== intermediate language ({} machines) ==\n", suite.len());
    println!("{}", ir::print::print_suite(&suite));

    // Static validation (all generated machines are clean; useful for
    // hand-written IR).
    for m in suite.machines() {
        for issue in ir::validate::validate(m) {
            println!("{issue}");
        }
    }

    // Specification-level consistency checking (the paper's §7 future
    // work): contradictions and self-defeating reactions.
    let set = spec::resolve(&ast, &app).expect("resolved above");
    let findings = spec::consistency::check(&set, &app);
    if findings.is_empty() {
        println!("== consistency: no findings ==\n");
    } else {
        println!("== consistency findings ==");
        for f in &findings {
            println!("{f}");
        }
        println!();
    }

    // Model-to-text: the ImmortalThreads-style C monitor.
    println!("== generated C monitor ==\n");
    println!("{}", ir::codegen::emit_c(&suite));
}
