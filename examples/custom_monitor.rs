//! Writing a monitor directly in the intermediate language (the
//! paper's §3.3 escape hatch for properties the specification language
//! cannot express), and running it alongside generated monitors.
//!
//! The custom property: "`send` may run at most twice per application
//! run" — a rate cap that has no spec-language keyword. Expressed as a
//! hand-written state machine, validated, installed, and enforced.
//!
//! ```text
//! cargo run --example custom_monitor
//! ```

use artemis::prelude::*;

const CUSTOM_IR: &str = r#"
// Rate cap: allow two completed `send` executions, then skip further
// attempts. Written directly in the ARTEMIS intermediate language.
machine send_rate_cap task send persistent {
    var done: int = 0;
    state Counting initial;
    on endTask(send) from Counting to Counting { done := (done + 1); };
    on startTask(send) from Counting to Counting if (done >= 2) { } fail skipTask;
}
"#;

fn main() {
    // A small app where `send` would naturally run three times.
    let mut b = AppGraphBuilder::new();
    let sense = b.task("sense");
    let sense_b = b.task("senseB");
    let sense_c = b.task("senseC");
    let send = b.task("send");
    b.path(&[sense, send]);
    b.path(&[sense_b, send]);
    b.path(&[sense_c, send]);
    let app = b.build().expect("valid graph");

    // Parse and validate the hand-written machine.
    let mut suite = artemis::ir::parse::parse_suite(CUSTOM_IR).expect("IR parses");
    for m in suite.machines() {
        artemis::ir::validate::validate_strict(m).expect("IR validates");
    }

    // Mix in a generated property from the specification language.
    let generated =
        artemis::ir::compile("sense: { maxTries: 5 onFail: skipPath; }", &app).expect("compiles");
    for m in generated {
        suite.push(m);
    }
    println!(
        "installed machines: {:?}",
        suite.machines().iter().map(|m| &m.name).collect::<Vec<_>>()
    );

    let mut dev = DeviceBuilder::msp430fr5994().build();
    let mut rb = ArtemisRuntimeBuilder::new(app.clone());
    for t in ["sense", "senseB", "senseC"] {
        rb.body(t, |ctx| ctx.compute(2_000));
    }
    rb.body("send", |ctx| ctx.transmit(16));
    let mut rt = rb.install(&mut dev, suite).expect("install");

    let outcome = rt.run_once(&mut dev, RunLimit::sim_time(SimDuration::from_mins(1)));
    println!("outcome: {outcome:?}");

    let sends = dev
        .trace()
        .completions_of(app.task_by_name("send").unwrap());
    println!("send completed {sends} time(s) — the cap allows 2");
    assert_eq!(sends, 2, "rate cap must hold");
    println!("\ntimeline:\n{}", dev.trace().render());
}
