//! The `artemis` command-line tool: compile and check property
//! specifications without writing a host program.
//!
//! ```text
//! artemis compile <spec-file> --paths sense>send [--emit ir|c|rust|dot]
//! artemis check   <spec-file> --tasks sense,send --paths sense>send
//! artemis demo    [charging-minutes]
//! ```
//!
//! `--paths` lists paths separated by commas; tasks within a path are
//! separated by `>`. A task that carries a monitored variable (for
//! `dpData`) is written `name:var`.

use std::process::ExitCode;

use artemis::core::app::{AppGraph, AppGraphBuilder};
use artemis::{ir, spec};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  artemis compile <spec-file> --paths a>b,c>b [--emit ir|c|rust|dot]\n  \
         artemis check   <spec-file> --paths a>b,c>b\n  \
         artemis demo    [charging-minutes]\n\n\
         path syntax: tasks separated by `>`, paths by `,`; a task with a\n\
         monitored variable is written `name:var`."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };

    match cmd.as_str() {
        "demo" => {
            let minutes: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(6);
            run_demo(minutes);
            ExitCode::SUCCESS
        }
        "compile" | "check" => {
            let Some(file) = args.get(1) else {
                return usage();
            };
            let source = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read `{file}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut paths_arg = None;
            let mut emit = "ir".to_string();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--paths" => {
                        paths_arg = args.get(i + 1).cloned();
                        i += 2;
                    }
                    "--emit" => {
                        emit = args.get(i + 1).cloned().unwrap_or_default();
                        i += 2;
                    }
                    other => {
                        eprintln!("unknown flag `{other}`");
                        return usage();
                    }
                }
            }
            let Some(paths_arg) = paths_arg else {
                eprintln!("`--paths` is required");
                return usage();
            };
            let app = match parse_app(&paths_arg) {
                Ok(app) => app,
                Err(e) => {
                    eprintln!("bad --paths: {e}");
                    return ExitCode::FAILURE;
                }
            };
            run_compile(&source, &app, cmd == "check", &emit)
        }
        _ => usage(),
    }
}

/// Builds the graph from the `--paths` syntax (handles repeated tasks).
fn parse_app(paths_arg: &str) -> Result<AppGraph, String> {
    // Two passes: declare each unique task once, then the paths.
    let mut b = AppGraphBuilder::new();
    let mut names: Vec<String> = Vec::new();
    let mut ids = std::collections::HashMap::new();
    for path in paths_arg.split(',') {
        for task in path.split('>') {
            let task = task.trim();
            if task.is_empty() {
                return Err("empty task name".to_string());
            }
            let (name, var) = match task.split_once(':') {
                Some((n, v)) => (n.trim(), Some(v.trim())),
                None => (task, None),
            };
            if !names.iter().any(|n| n == name) {
                names.push(name.to_string());
                let id = match var {
                    Some(v) => b.task_with_var(name, v),
                    None => b.task(name),
                };
                ids.insert(name.to_string(), id);
            }
        }
    }
    for path in paths_arg.split(',') {
        let list: Vec<_> = path
            .split('>')
            .map(|t| {
                let name = t.trim().split(':').next().unwrap_or("").trim();
                ids[name]
            })
            .collect();
        b.path(&list);
    }
    b.build().map_err(|e| e.to_string())
}

fn run_compile(source: &str, app: &AppGraph, check_only: bool, emit: &str) -> ExitCode {
    let ast = match spec::parse(source) {
        Ok(ast) => ast,
        Err(d) => {
            eprintln!("{}", d.render(source));
            return ExitCode::FAILURE;
        }
    };
    let set = match spec::resolve(&ast, app) {
        Ok(set) => set,
        Err(d) => {
            eprintln!("{}", d.render(source));
            return ExitCode::FAILURE;
        }
    };

    // Consistency findings always print; contradictions fail `check`.
    let findings = spec::consistency::check(&set, app);
    let mut contradiction = false;
    for f in &findings {
        eprintln!("{f}");
        contradiction |= f.severity == spec::consistency::ConsistencySeverity::Contradiction;
    }

    let suite = match ir::lower_set(&set, app) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lowering failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for m in suite.machines() {
        for issue in ir::validate::validate(m) {
            eprintln!("{issue}");
        }
    }

    if check_only {
        if contradiction {
            eprintln!("check failed: contradictions found");
            return ExitCode::FAILURE;
        }
        println!(
            "ok: {} propert(ies), {} machine(s), {} consistency finding(s)",
            set.len(),
            suite.len(),
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    match emit {
        "ir" => println!("{}", ir::print::print_suite(&suite)),
        "c" => println!("{}", ir::codegen::emit_c(&suite)),
        "rust" => println!("{}", ir::codegen::emit_rust(&suite)),
        "dot" => println!("{}", ir::dot::suite_to_dot(&suite)),
        other => {
            eprintln!("unknown --emit `{other}` (expected ir, c, rust or dot)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn run_demo(minutes: u64) {
    use artemis::bench::health::{benchmark_device, install_artemis, nominal_minutes, HEALTH_SPEC};
    use artemis::prelude::*;

    println!("ARTEMIS health-monitor demo, {minutes} nominal minute(s) of charging\n");
    let mut dev = benchmark_device(Harvester::FixedDelay(nominal_minutes(minutes)));
    let mut rt = install_artemis(&mut dev, HEALTH_SPEC);
    let outcome = rt.run_once(&mut dev, RunLimit::sim_time(SimDuration::from_hours(6)));
    let mut text = dev.trace().render();
    for (i, t) in rt.app().tasks().iter().enumerate().rev() {
        text = text.replace(&format!("task#{i}"), &t.name);
    }
    println!("{text}");
    println!("outcome: {outcome:?}");
}
