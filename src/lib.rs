//! ARTEMIS — adaptable runtime monitoring for intermittent systems.
//!
//! This is the facade crate of the ARTEMIS reproduction (EuroSys '24,
//! Yıldız et al., DOI 10.1145/3627703.3650070). It re-exports the public
//! API of every workspace crate so applications can depend on a single
//! crate:
//!
//! - [`core`] — shared domain model (time, tasks, paths, events, actions,
//!   properties, traces);
//! - [`sim`] — the MSP430FR-style intermittent device simulator
//!   (FRAM/SRAM, capacitor, harvesters, persistent clock, peripherals);
//! - [`immortal`] — the ImmortalThreads-style local-continuation
//!   substrate for power-failure-resilient routines;
//! - [`spec`] — the property specification language front end;
//! - [`ir`] — the intermediate state-machine language, the spec → FSM
//!   lowering, and C/Rust monitor code generation;
//! - [`monitor`] — the power-failure-resilient monitor engine;
//! - [`runtime`] — the ARTEMIS task-based intermittent runtime;
//! - [`fleet`] — fleet-scale sharded simulation of many devices across
//!   OS threads with deterministic per-device seed streams;
//! - [`mayfly`] — the Mayfly baseline runtime used by the evaluation;
//! - [`mod@bench`] — the benchmark application and experiment drivers.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete program; the shape is:
//!
//! ```
//! use artemis::prelude::*;
//!
//! // 1. Describe the task graph.
//! let mut b = AppGraphBuilder::new();
//! let sense = b.task("sense");
//! let send = b.task("send");
//! b.path(&[sense, send]);
//! let app = b.build().unwrap();
//!
//! // 2. Write properties in the specification language.
//! let spec = artemis::spec::parse(
//!     "sense: { maxTries: 3 onFail: skipPath; }",
//! ).unwrap();
//!
//! // 3. Lower them to finite-state-machine monitors.
//! let monitors = artemis::ir::lower(&spec, &app).unwrap();
//! assert_eq!(monitors.machines().len(), 1);
//! ```

pub use artemis_bench as bench;
pub use artemis_core as core;
pub use artemis_fleet as fleet;
pub use artemis_ir as ir;
pub use artemis_monitor as monitor;
pub use artemis_runtime as runtime;
pub use artemis_spec as spec;
pub use checkpoint;
pub use immortal;
pub use intermittent_sim as sim;
pub use mayfly;

/// Convenience re-exports for application code.
pub mod prelude {
    pub use artemis_core::{
        Action, AppGraph, AppGraphBuilder, EventKind, MonitorEvent, OnFail, PathId, Property,
        PropertyKind, PropertySet, SimDuration, SimInstant, TaskId, Trace, TraceEvent, Verdict,
    };
    pub use artemis_monitor::MonitorEngine;
    pub use artemis_runtime::{ArtemisRuntime, ArtemisRuntimeBuilder, RunOutcome, TaskCtx};
    pub use intermittent_sim::{
        Capacitor, Device, DeviceBuilder, Energy, Harvester, Interrupt, Peripheral, RunLimit,
        SimOutcome, Simulator,
    };
    pub use mayfly::{MayflyRuntime, MayflyRuntimeBuilder};
}
